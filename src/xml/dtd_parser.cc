#include "xml/dtd_parser.h"

#include <memory>

#include "common/str_util.h"
#include "xml/cursor.h"

namespace xmlsec {
namespace xml {

namespace {

constexpr int kMaxEntityDepth = 32;

/// Expands parameter-entity references textually.  Declarations are
/// collected left-to-right (XML requires declaration before use), and
/// `%name;` occurrences outside comments are spliced in, recursively up
/// to a depth limit.  The returned text contains no PE references.
class ParameterEntityExpander {
 public:
  explicit ParameterEntityExpander(Dtd* dtd) : dtd_(dtd) {}

  Result<std::string> Expand(std::string_view text, int depth) {
    if (depth > kMaxEntityDepth) {
      return Status::ParseError(
          "parameter entity expansion exceeds depth limit (recursive "
          "entity?)");
    }
    std::string out;
    out.reserve(text.size());
    size_t i = 0;
    while (i < text.size()) {
      // Comments pass through verbatim; '%' inside them is not a PE ref.
      if (text.substr(i, 4) == "<!--") {
        size_t end = text.find("-->", i + 4);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment in DTD");
        }
        out.append(text.substr(i, end + 3 - i));
        i = end + 3;
        continue;
      }
      // Collect PE declarations as we pass them so later refs resolve.
      if (text.substr(i, 9) == "<!ENTITY " ||
          text.substr(i, 9) == "<!ENTITY\t" ||
          text.substr(i, 9) == "<!ENTITY\n" ||
          text.substr(i, 9) == "<!ENTITY\r") {
        size_t end = FindDeclEnd(text, i);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated <!ENTITY> declaration");
        }
        std::string_view decl = text.substr(i, end + 1 - i);
        RecordParameterEntity(decl);
        out.append(decl);
        i = end + 1;
        continue;
      }
      if (text[i] == '%' && i + 1 < text.size() &&
          IsNameStartChar(text[i + 1])) {
        size_t j = i + 1;
        while (j < text.size() && IsNameChar(text[j])) ++j;
        if (j < text.size() && text[j] == ';') {
          std::string name(text.substr(i + 1, j - i - 1));
          const EntityDecl* decl = dtd_->FindEntity(name, /*parameter=*/true);
          if (decl == nullptr) {
            return Status::ParseError("undeclared parameter entity '%" +
                                      name + ";'");
          }
          if (decl->is_external) {
            // External parameter entities are recorded but their content
            // is not fetched; skip the reference (common for modular DTDs
            // whose modules are resolved out of band).
            i = j + 1;
            continue;
          }
          XMLSEC_ASSIGN_OR_RETURN(std::string expanded,
                                  Expand(decl->value, depth + 1));
          out.append(expanded);
          i = j + 1;
          continue;
        }
      }
      out.push_back(text[i]);
      ++i;
    }
    return out;
  }

 private:
  /// Finds the '>' ending a declaration, skipping quoted literals.
  static size_t FindDeclEnd(std::string_view text, size_t start) {
    char quote = '\0';
    for (size_t i = start; i < text.size(); ++i) {
      char c = text[i];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return i;
      }
    }
    return std::string_view::npos;
  }

  /// Best-effort scan of `<!ENTITY % name "value">`; errors are deferred
  /// to the main parse, which re-reads the declaration properly.
  void RecordParameterEntity(std::string_view decl) {
    TextCursor cur(decl);
    cur.Match("<!ENTITY");
    cur.SkipSpace();
    if (!cur.Match("%")) return;  // General entity: main parse handles it.
    cur.SkipSpace();
    EntityDecl entity;
    entity.is_parameter = true;
    entity.name = cur.ReadName();
    if (entity.name.empty()) return;
    cur.SkipSpace();
    if (cur.Match("SYSTEM") || cur.Match("PUBLIC")) {
      entity.is_external = true;
      dtd_->AddEntity(std::move(entity));
      return;
    }
    char quote = cur.Peek();
    if (quote != '"' && quote != '\'') return;
    cur.Advance();
    std::string value;
    while (!cur.AtEnd() && cur.Peek() != quote) value.push_back(cur.Advance());
    entity.value = std::move(value);
    dtd_->AddEntity(std::move(entity));
  }

  Dtd* dtd_;
};

/// Recursive-descent parser for the (PE-expanded) declaration stream.
class DtdParser {
 public:
  DtdParser(std::string_view text, Dtd* dtd)
      : cur_(text), dtd_(dtd), full_text_(text) {}

  Status Parse() {
    while (true) {
      cur_.SkipSpace();
      if (cur_.AtEnd()) return Status::OK();
      if (cur_.Match("<!--")) {
        XMLSEC_RETURN_IF_ERROR(SkipComment());
      } else if (cur_.Match("<![")) {
        XMLSEC_RETURN_IF_ERROR(ParseConditionalSection());
      } else if (cur_.Match("<!ELEMENT")) {
        XMLSEC_RETURN_IF_ERROR(ParseElementDecl());
      } else if (cur_.Match("<!ATTLIST")) {
        XMLSEC_RETURN_IF_ERROR(ParseAttlistDecl());
      } else if (cur_.Match("<!ENTITY")) {
        XMLSEC_RETURN_IF_ERROR(ParseEntityDecl());
      } else if (cur_.Match("<!NOTATION")) {
        XMLSEC_RETURN_IF_ERROR(ParseNotationDecl());
      } else if (cur_.Match("<?")) {
        XMLSEC_RETURN_IF_ERROR(SkipProcessingInstruction());
      } else {
        return cur_.Error("unexpected content in DTD");
      }
    }
  }

 private:
  Status SkipComment() {
    // "<!--" already consumed.
    while (!cur_.AtEnd()) {
      if (cur_.Match("-->")) return Status::OK();
      if (cur_.LookingAt("--")) {
        return cur_.Error("'--' not allowed inside comment");
      }
      cur_.Advance();
    }
    return cur_.Error("unterminated comment");
  }

  Status SkipProcessingInstruction() {
    while (!cur_.AtEnd()) {
      if (cur_.Match("?>")) return Status::OK();
      cur_.Advance();
    }
    return cur_.Error("unterminated processing instruction");
  }

  Status ParseConditionalSection() {
    cur_.SkipSpace();
    bool include;
    if (cur_.Match("INCLUDE")) {
      include = true;
    } else if (cur_.Match("IGNORE")) {
      include = false;
    } else {
      return cur_.Error("expected INCLUDE or IGNORE in conditional section");
    }
    cur_.SkipSpace();
    if (!cur_.Match("[")) {
      return cur_.Error("expected '[' in conditional section");
    }
    size_t body_begin = cur_.pos();
    // Find the matching "]]>", honouring nesting of "<![".
    int depth = 1;
    size_t body_end = 0;
    while (!cur_.AtEnd()) {
      if (cur_.LookingAt("<![")) {
        ++depth;
        cur_.Match("<![");
      } else if (cur_.LookingAt("]]>")) {
        --depth;
        if (depth == 0) {
          body_end = cur_.pos();
          cur_.Match("]]>");
          break;
        }
        cur_.Match("]]>");
      } else {
        cur_.Advance();
      }
    }
    if (depth != 0) return cur_.Error("unterminated conditional section");
    if (include) {
      DtdParser inner(cur_.Slice(body_begin, body_end), dtd_);
      XMLSEC_RETURN_IF_ERROR(inner.Parse());
    }
    return Status::OK();
  }

  Status ParseElementDecl() {
    if (!cur_.SkipSpace()) return cur_.Error("expected space after <!ELEMENT");
    ElementDecl decl;
    decl.name = cur_.ReadName();
    if (decl.name.empty()) return cur_.Error("expected element name");
    if (!cur_.SkipSpace()) {
      return cur_.Error("expected space after element name");
    }
    if (cur_.Match("EMPTY")) {
      decl.content_kind = ContentKind::kEmpty;
    } else if (cur_.Match("ANY")) {
      decl.content_kind = ContentKind::kAny;
    } else if (cur_.Peek() == '(') {
      // Distinguish mixed content from element content: after "(" and
      // whitespace, mixed content starts with "#PCDATA".
      size_t mark = cur_.pos();
      cur_.Advance();
      cur_.SkipSpace();
      if (cur_.Match("#PCDATA")) {
        XMLSEC_RETURN_IF_ERROR(ParseMixedTail(&decl));
      } else {
        // Rewind and parse a full content particle.
        RewindTo(mark);
        decl.content_kind = ContentKind::kChildren;
        ContentParticle particle;
        XMLSEC_RETURN_IF_ERROR(ParseContentParticle(&particle));
        decl.particle = std::move(particle);
      }
    } else {
      return cur_.Error("expected EMPTY, ANY, or '(' in element declaration");
    }
    cur_.SkipSpace();
    if (!cur_.Match(">")) {
      return cur_.Error("expected '>' closing <!ELEMENT");
    }
    return dtd_->AddElementDecl(std::move(decl));
  }

  /// Parses the remainder of `(#PCDATA |name|...)*` after "#PCDATA".
  Status ParseMixedTail(ElementDecl* decl) {
    decl->content_kind = ContentKind::kMixed;
    cur_.SkipSpace();
    while (cur_.Match("|")) {
      cur_.SkipSpace();
      std::string name = cur_.ReadName();
      if (name.empty()) return cur_.Error("expected name in mixed content");
      decl->mixed_names.push_back(std::move(name));
      cur_.SkipSpace();
    }
    if (!cur_.Match(")")) return cur_.Error("expected ')' in mixed content");
    if (!decl->mixed_names.empty()) {
      if (!cur_.Match("*")) {
        return cur_.Error("mixed content with names must end with ')*'");
      }
    } else {
      cur_.Match("*");  // Optional for bare (#PCDATA).
    }
    return Status::OK();
  }

  /// cp ::= (Name | choice | seq) ('?' | '*' | '+')?
  Status ParseContentParticle(ContentParticle* out) {
    cur_.SkipSpace();
    if (cur_.Match("(")) {
      std::vector<ContentParticle> items;
      char separator = '\0';
      while (true) {
        ContentParticle item;
        XMLSEC_RETURN_IF_ERROR(ParseContentParticle(&item));
        items.push_back(std::move(item));
        cur_.SkipSpace();
        if (cur_.Peek() == ',' || cur_.Peek() == '|') {
          char sep = cur_.Advance();
          if (separator == '\0') {
            separator = sep;
          } else if (separator != sep) {
            return cur_.Error("cannot mix ',' and '|' in one content group");
          }
          continue;
        }
        if (cur_.Match(")")) break;
        return cur_.Error("expected ',', '|', or ')' in content model");
      }
      out->kind = separator == '|' ? ContentParticle::Kind::kChoice
                                   : ContentParticle::Kind::kSequence;
      out->children = std::move(items);
    } else {
      std::string name = cur_.ReadName();
      if (name.empty()) return cur_.Error("expected name in content model");
      out->kind = ContentParticle::Kind::kName;
      out->name = std::move(name);
    }
    if (cur_.Match("?")) {
      out->cardinality = Cardinality::kOptional;
    } else if (cur_.Match("*")) {
      out->cardinality = Cardinality::kZeroOrMore;
    } else if (cur_.Match("+")) {
      out->cardinality = Cardinality::kOneOrMore;
    } else {
      out->cardinality = Cardinality::kOne;
    }
    return Status::OK();
  }

  Status ParseAttlistDecl() {
    if (!cur_.SkipSpace()) return cur_.Error("expected space after <!ATTLIST");
    std::string element = cur_.ReadName();
    if (element.empty()) return cur_.Error("expected element name in ATTLIST");
    while (true) {
      bool spaced = cur_.SkipSpace();
      if (cur_.Match(">")) return Status::OK();
      if (!spaced) return cur_.Error("expected space or '>' in ATTLIST");
      if (cur_.AtEnd()) return cur_.Error("unterminated <!ATTLIST");
      AttrDecl decl;
      decl.name = cur_.ReadName();
      if (decl.name.empty()) return cur_.Error("expected attribute name");
      if (!cur_.SkipSpace()) {
        return cur_.Error("expected space after attribute name");
      }
      XMLSEC_RETURN_IF_ERROR(ParseAttrType(&decl));
      if (!cur_.SkipSpace()) {
        return cur_.Error("expected space before attribute default");
      }
      XMLSEC_RETURN_IF_ERROR(ParseAttrDefault(&decl));
      dtd_->AddAttrDecl(element, std::move(decl));
    }
  }

  Status ParseAttrType(AttrDecl* decl) {
    // Longest keywords first (IDREFS before IDREF before ID, etc.).
    if (cur_.Match("CDATA")) {
      decl->type = AttrType::kCData;
    } else if (cur_.Match("IDREFS")) {
      decl->type = AttrType::kIdRefs;
    } else if (cur_.Match("IDREF")) {
      decl->type = AttrType::kIdRef;
    } else if (cur_.Match("ID")) {
      decl->type = AttrType::kId;
    } else if (cur_.Match("ENTITY")) {
      decl->type = AttrType::kEntity;
    } else if (cur_.Match("ENTITIES")) {
      decl->type = AttrType::kEntities;
    } else if (cur_.Match("NMTOKENS")) {
      decl->type = AttrType::kNmTokens;
    } else if (cur_.Match("NMTOKEN")) {
      decl->type = AttrType::kNmToken;
    } else if (cur_.Match("NOTATION")) {
      decl->type = AttrType::kNotation;
      cur_.SkipSpace();
      if (!cur_.Match("(")) {
        return cur_.Error("expected '(' after NOTATION");
      }
      XMLSEC_RETURN_IF_ERROR(ParseTokenList(decl, /*names=*/true));
    } else if (cur_.Peek() == '(') {
      cur_.Advance();
      decl->type = AttrType::kEnumeration;
      XMLSEC_RETURN_IF_ERROR(ParseTokenList(decl, /*names=*/false));
    } else {
      return cur_.Error("unknown attribute type");
    }
    return Status::OK();
  }

  Status ParseTokenList(AttrDecl* decl, bool names) {
    while (true) {
      cur_.SkipSpace();
      std::string token = names ? cur_.ReadName() : cur_.ReadNmtoken();
      if (token.empty()) {
        return cur_.Error("expected token in enumerated attribute type");
      }
      decl->enum_values.push_back(std::move(token));
      cur_.SkipSpace();
      if (cur_.Match(")")) return Status::OK();
      if (!cur_.Match("|")) {
        return cur_.Error("expected '|' or ')' in enumerated type");
      }
    }
  }

  Status ParseAttrDefault(AttrDecl* decl) {
    if (cur_.Match("#REQUIRED")) {
      decl->default_kind = AttrDefaultKind::kRequired;
      return Status::OK();
    }
    if (cur_.Match("#IMPLIED")) {
      decl->default_kind = AttrDefaultKind::kImplied;
      return Status::OK();
    }
    if (cur_.Match("#FIXED")) {
      decl->default_kind = AttrDefaultKind::kFixed;
      if (!cur_.SkipSpace()) return cur_.Error("expected space after #FIXED");
      std::string raw;
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&raw));
      return ResolveCharRefs(raw, &decl->default_value);
    }
    decl->default_kind = AttrDefaultKind::kDefault;
    std::string raw;
    XMLSEC_RETURN_IF_ERROR(ParseQuoted(&raw));
    return ResolveCharRefs(raw, &decl->default_value);
  }

  Status ParseQuoted(std::string* out) {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted literal");
    }
    cur_.Advance();
    out->clear();
    while (!cur_.AtEnd() && cur_.Peek() != quote) {
      out->push_back(cur_.Advance());
    }
    if (!cur_.Match(std::string_view(&quote, 1))) {
      return cur_.Error("unterminated quoted literal");
    }
    return Status::OK();
  }

  Status ParseEntityDecl() {
    if (!cur_.SkipSpace()) return cur_.Error("expected space after <!ENTITY");
    EntityDecl decl;
    if (cur_.Match("%")) {
      decl.is_parameter = true;
      if (!cur_.SkipSpace()) return cur_.Error("expected space after '%'");
    }
    decl.name = cur_.ReadName();
    if (decl.name.empty()) return cur_.Error("expected entity name");
    if (!cur_.SkipSpace()) return cur_.Error("expected space after entity name");
    if (cur_.Match("SYSTEM")) {
      decl.is_external = true;
      if (!cur_.SkipSpace()) return cur_.Error("expected space after SYSTEM");
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.system_id));
    } else if (cur_.Match("PUBLIC")) {
      decl.is_external = true;
      if (!cur_.SkipSpace()) return cur_.Error("expected space after PUBLIC");
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.public_id));
      if (!cur_.SkipSpace()) return cur_.Error("expected space after public id");
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.system_id));
    } else {
      std::string raw;
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&raw));
      // Character references are resolved in entity values; general
      // entity references are preserved (expanded at point of use).
      XMLSEC_RETURN_IF_ERROR(ResolveCharRefs(raw, &decl.value));
    }
    cur_.SkipSpace();
    if (decl.is_external && !decl.is_parameter && cur_.Match("NDATA")) {
      if (!cur_.SkipSpace()) return cur_.Error("expected space after NDATA");
      decl.ndata = cur_.ReadName();
      if (decl.ndata.empty()) return cur_.Error("expected notation name");
      cur_.SkipSpace();
    }
    if (!cur_.Match(">")) return cur_.Error("expected '>' closing <!ENTITY");
    dtd_->AddEntity(std::move(decl));
    return Status::OK();
  }

  Status ParseNotationDecl() {
    if (!cur_.SkipSpace()) return cur_.Error("expected space after <!NOTATION");
    NotationDecl decl;
    decl.name = cur_.ReadName();
    if (decl.name.empty()) return cur_.Error("expected notation name");
    if (!cur_.SkipSpace()) return cur_.Error("expected space in NOTATION");
    if (cur_.Match("SYSTEM")) {
      if (!cur_.SkipSpace()) return cur_.Error("expected space after SYSTEM");
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.system_id));
    } else if (cur_.Match("PUBLIC")) {
      if (!cur_.SkipSpace()) return cur_.Error("expected space after PUBLIC");
      XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.public_id));
      cur_.SkipSpace();
      if (cur_.Peek() == '"' || cur_.Peek() == '\'') {
        XMLSEC_RETURN_IF_ERROR(ParseQuoted(&decl.system_id));
      }
    } else {
      return cur_.Error("expected SYSTEM or PUBLIC in NOTATION");
    }
    cur_.SkipSpace();
    if (!cur_.Match(">")) return cur_.Error("expected '>' closing <!NOTATION");
    return dtd_->AddNotation(std::move(decl));
  }

  /// Expands `&#NN;` / `&#xHH;` in entity replacement text.
  Status ResolveCharRefs(std::string_view raw, std::string* out) {
    out->clear();
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] == '&' && i + 2 < raw.size() && raw[i + 1] == '#') {
        size_t end = raw.find(';', i + 2);
        if (end == std::string_view::npos) {
          return cur_.Error("malformed character reference in entity value");
        }
        std::string_view body = raw.substr(i + 2, end - i - 2);
        uint32_t cp = 0;
        bool ok = !body.empty();
        if (!body.empty() && (body[0] == 'x' || body[0] == 'X')) {
          for (size_t k = 1; k < body.size() && ok; ++k) {
            char c = body[k];
            ok = IsHexDigit(c);
            if (ok) {
              cp = cp * 16 + static_cast<uint32_t>(
                                 IsDigit(c)    ? c - '0'
                                 : (c >= 'a') ? c - 'a' + 10
                                              : c - 'A' + 10);
            }
          }
          ok = ok && body.size() > 1;
        } else {
          for (char c : body) {
            if (!IsDigit(c)) {
              ok = false;
              break;
            }
            cp = cp * 10 + static_cast<uint32_t>(c - '0');
          }
        }
        if (!ok || cp == 0 || cp > 0x10FFFF) {
          return cur_.Error("invalid character reference in entity value");
        }
        AppendUtf8(cp, out);
        i = end + 1;
      } else {
        out->push_back(raw[i]);
        ++i;
      }
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// Repositions the scanner at byte offset `mark` of the current text
  /// (line/column restart from the slice — acceptable for the one
  /// backtrack point in mixed-vs-children disambiguation).  The backing
  /// text is re-based so cursor offsets stay consistent across rewinds.
  void RewindTo(size_t mark) {
    full_text_ = full_text_.substr(mark);
    cur_ = TextCursor(full_text_);
  }

  TextCursor cur_;
  Dtd* dtd_;
  std::string_view full_text_;
};

Status ParseDtdIntoImpl(std::string_view text, Dtd* dtd) {
  ParameterEntityExpander expander(dtd);
  XMLSEC_ASSIGN_OR_RETURN(std::string expanded, expander.Expand(text, 0));
  DtdParser parser(expanded, dtd);
  return parser.Parse();
}

}  // namespace

Result<std::unique_ptr<Dtd>> ParseDtd(std::string_view text) {
  auto dtd = std::make_unique<Dtd>();
  XMLSEC_RETURN_IF_ERROR(ParseDtdIntoImpl(text, dtd.get()));
  return dtd;
}

Status ParseDtdInto(std::string_view text, Dtd* dtd) {
  return ParseDtdIntoImpl(text, dtd);
}

}  // namespace xml
}  // namespace xmlsec
