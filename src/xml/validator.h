#ifndef XMLSEC_XML_VALIDATOR_H_
#define XMLSEC_XML_VALIDATOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/content_model.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// Knobs for validation.
struct ValidationOptions {
  /// Inject attributes with DTD default / #FIXED values when absent from
  /// the document (XML 1.0 attribute defaulting).
  bool add_default_attributes = true;
  /// Treat undeclared elements / attributes as errors (full XML validity).
  /// When false, unknown names are permitted — useful for loosened-schema
  /// scenarios.
  bool strict_declarations = true;
};

/// Validates documents against a DTD: element content models (compiled
/// once and cached), attribute declarations, ID uniqueness, IDREF
/// resolution, root element name.
///
/// A `Validator` instance caches compiled content models for its DTD and
/// may validate many documents (the security processor validates both the
/// original document and the pruned view).
class Validator {
 public:
  explicit Validator(const Dtd* dtd, ValidationOptions options = {});

  /// Validates `doc`.  All violations are collected in `errors()`; the
  /// returned status is OK when there are none, otherwise a
  /// ValidationError carrying the first message and the total count.
  /// May mutate the document when `add_default_attributes` is set.
  Status Validate(Document* doc);

  /// Violations found by the last `Validate` call, human-readable,
  /// document order.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  void ValidateElement(Element* el);
  void ValidateAttributes(Element* el);
  void CheckAttrValue(const Element& el, const AttrDecl& decl,
                      const std::string& value);
  const ContentModelMatcher* MatcherFor(const ElementDecl& decl);
  void AddError(const Node& node, std::string message);

  const Dtd* dtd_;
  ValidationOptions options_;
  std::vector<std::string> errors_;
  std::map<std::string, std::unique_ptr<ContentModelMatcher>> matchers_;

  // Per-document ID bookkeeping.
  std::set<std::string> seen_ids_;
  std::vector<std::pair<std::string, std::string>> pending_idrefs_;
};

/// One-shot convenience: validates `doc` against its attached DTD.
/// Fails with InvalidArgument when the document has no DTD.
Status ValidateDocument(Document* doc, ValidationOptions options = {});

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_VALIDATOR_H_
