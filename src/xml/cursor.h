#ifndef XMLSEC_XML_CURSOR_H_
#define XMLSEC_XML_CURSOR_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/chars.h"

namespace xmlsec {
namespace xml {

/// A position-tracking scanner over an in-memory buffer, shared by the
/// XML document parser and the DTD parser.
class TextCursor {
 public:
  explicit TextCursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  int column() const { return column_; }

  /// Current character; '\0' at end of input.
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  /// Character `k` ahead of the current one; '\0' past the end.
  char PeekAt(size_t k) const {
    return pos_ + k >= text_.size() ? '\0' : text_[pos_ + k];
  }

  /// Consumes and returns the current character ('\0' at end).
  char Advance() {
    if (AtEnd()) return '\0';
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  /// True when the remaining input begins with `s`.
  bool LookingAt(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  /// Consumes `s` if the input begins with it.
  bool Match(std::string_view s) {
    if (!LookingAt(s)) return false;
    for (size_t i = 0; i < s.size(); ++i) Advance();
    return true;
  }

  /// Consumes a run of XML whitespace; returns whether any was consumed.
  bool SkipSpace() {
    bool any = false;
    while (!AtEnd() && IsXmlSpace(Peek())) {
      Advance();
      any = true;
    }
    return any;
  }

  /// Reads an XML Name; empty string when the input does not start one.
  std::string ReadName() {
    std::string name;
    if (!AtEnd() && IsNameStartChar(Peek())) {
      name.push_back(Advance());
      while (!AtEnd() && IsNameChar(Peek())) name.push_back(Advance());
    }
    return name;
  }

  /// Reads an XML Nmtoken (name characters, no start-char restriction).
  std::string ReadNmtoken() {
    std::string tok;
    while (!AtEnd() && IsNameChar(Peek())) tok.push_back(Advance());
    return tok;
  }

  /// Builds a ParseError status pointing at the current position.
  Status Error(std::string_view what) const {
    return Status::ParseError(std::string(what) + " at line " +
                              std::to_string(line_) + ", column " +
                              std::to_string(column_));
  }

  /// Raw substring access (used for slicing out scanned regions).
  std::string_view Slice(size_t begin, size_t end) const {
    return text_.substr(begin, end - begin);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_CURSOR_H_
