#include "xml/dtd_tree.h"

#include <set>
#include <vector>

namespace xmlsec {
namespace xml {

namespace {

/// Flattens a content particle into child edges.  Group cardinalities
/// compose with member cardinalities pessimistically: a member inside a
/// `*` or `?` group can occur zero times, inside a `+` group many times.
void CollectEdges(const ContentParticle& particle, Cardinality outer,
                  std::vector<SchemaEdge>* out) {
  Cardinality combined = particle.cardinality;
  // Compose outer group cardinality with this particle's.
  auto optional_of = [](Cardinality c) {
    switch (c) {
      case Cardinality::kOne:
        return Cardinality::kOptional;
      case Cardinality::kOneOrMore:
        return Cardinality::kZeroOrMore;
      default:
        return c;
    }
  };
  auto repeated_of = [](Cardinality c) {
    switch (c) {
      case Cardinality::kOne:
        return Cardinality::kOneOrMore;
      case Cardinality::kOptional:
        return Cardinality::kZeroOrMore;
      default:
        return c;
    }
  };
  switch (outer) {
    case Cardinality::kOne:
      break;
    case Cardinality::kOptional:
      combined = optional_of(combined);
      break;
    case Cardinality::kOneOrMore:
      combined = repeated_of(combined);
      break;
    case Cardinality::kZeroOrMore:
      combined = optional_of(repeated_of(combined));
      break;
  }

  if (particle.kind == ContentParticle::Kind::kName) {
    out->push_back(SchemaEdge{particle.name, combined});
    return;
  }
  // Members of a choice are individually optional.
  Cardinality member_outer =
      particle.kind == ContentParticle::Kind::kChoice
          ? (combined == Cardinality::kOne ||
                     combined == Cardinality::kOptional
                 ? Cardinality::kOptional
                 : Cardinality::kZeroOrMore)
          : combined;
  for (const ContentParticle& child : particle.children) {
    CollectEdges(child, member_outer, out);
  }
}

const char* ArcLabel(Cardinality c) {
  switch (c) {
    case Cardinality::kOne:
      return "---";
    case Cardinality::kOptional:
      return "--?";
    case Cardinality::kZeroOrMore:
      return "--*";
    case Cardinality::kOneOrMore:
      return "--+";
  }
  return "---";
}

void Render(const Dtd& dtd, const std::string& name, int depth,
            std::set<std::string>* on_branch, std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 6, ' ');
  if (depth == 0) {
    *out += "(" + name + ")\n";
  }
  const ElementDecl* decl = dtd.FindElement(name);
  on_branch->insert(name);

  // Attributes first (squares in the paper's figure).
  if (const std::vector<AttrDecl>* attrs = dtd.FindAttlist(name)) {
    for (const AttrDecl& attr : *attrs) {
      Cardinality c = attr.default_kind == AttrDefaultKind::kRequired ||
                              attr.default_kind == AttrDefaultKind::kFixed ||
                              attr.default_kind == AttrDefaultKind::kDefault
                          ? Cardinality::kOne
                          : Cardinality::kOptional;
      *out += indent + " |" + ArcLabel(c) + " [" + attr.name + "]\n";
    }
  }

  if (decl != nullptr) {
    for (const SchemaEdge& edge : SchemaChildEdges(dtd, *decl)) {
      bool cycle = on_branch->count(edge.name) > 0;
      *out += indent + " |" + ArcLabel(edge.cardinality) + " (" + edge.name +
              (cycle ? ")^\n" : ")\n");
      if (!cycle) {
        Render(dtd, edge.name, depth + 1, on_branch, out);
      }
    }
  }
  on_branch->erase(name);
}

}  // namespace

std::vector<SchemaEdge> SchemaChildEdges(const Dtd& dtd,
                                         const ElementDecl& decl) {
  std::vector<SchemaEdge> edges;
  switch (decl.content_kind) {
    case ContentKind::kEmpty:
      break;
    case ContentKind::kAny:
      for (const auto& [name, other] : dtd.elements()) {
        (void)other;
        edges.push_back(SchemaEdge{name, Cardinality::kZeroOrMore});
      }
      break;
    case ContentKind::kMixed:
      for (const std::string& mixed : decl.mixed_names) {
        edges.push_back(SchemaEdge{mixed, Cardinality::kZeroOrMore});
      }
      break;
    case ContentKind::kChildren:
      if (decl.particle.has_value()) {
        CollectEdges(*decl.particle, Cardinality::kOne, &edges);
      }
      break;
  }
  return edges;
}

std::string DtdTreeString(const Dtd& dtd, const std::string& root) {
  std::string start = root;
  if (start.empty()) start = dtd.name();
  if (start.empty() && !dtd.elements().empty()) {
    start = dtd.elements().begin()->first;
  }
  if (start.empty()) return "(empty DTD)\n";
  std::string out;
  std::set<std::string> on_branch;
  Render(dtd, start, 0, &on_branch, &out);
  return out;
}

}  // namespace xml
}  // namespace xmlsec
