#include "xml/dom.h"

#include <cassert>

#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

std::string_view NodeTypeToString(NodeType type) {
  switch (type) {
    case NodeType::kDocument:
      return "document";
    case NodeType::kElement:
      return "element";
    case NodeType::kAttribute:
      return "attribute";
    case NodeType::kText:
      return "text";
    case NodeType::kCData:
      return "cdata";
    case NodeType::kComment:
      return "comment";
    case NodeType::kProcessingInstruction:
      return "processing-instruction";
  }
  return "unknown";
}

Node* Node::AppendChild(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  assert(node->parent_ == nullptr);
  node->parent_ = this;
  children_.push_back(std::move(node));
  return children_.back().get();
}

Node* Node::InsertBefore(std::unique_ptr<Node> node, const Node* reference) {
  assert(node != nullptr);
  assert(node->parent_ == nullptr);
  if (reference == nullptr) return AppendChild(std::move(node));
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == reference) {
      node->parent_ = this;
      Node* raw = node.get();
      children_.insert(children_.begin() + static_cast<ptrdiff_t>(i),
                       std::move(node));
      return raw;
    }
  }
  return nullptr;
}

std::unique_ptr<Node> Node::ReplaceChild(std::unique_ptr<Node> node,
                                         Node* old_child) {
  assert(node != nullptr);
  assert(node->parent_ == nullptr);
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == old_child) {
      node->parent_ = this;
      std::unique_ptr<Node> out = std::move(children_[i]);
      children_[i] = std::move(node);
      out->parent_ = nullptr;
      return out;
    }
  }
  return nullptr;
}

void Node::Normalize() {
  for (size_t i = 0; i < children_.size();) {
    Node* child = children_[i].get();
    if (child->type_ == NodeType::kText) {
      auto* text = static_cast<Text*>(child);
      if (text->data().empty()) {
        RemoveChildAt(i);
        continue;
      }
      if (i + 1 < children_.size() &&
          children_[i + 1]->type_ == NodeType::kText) {
        auto* next = static_cast<Text*>(children_[i + 1].get());
        text->set_data(text->data() + next->data());
        RemoveChildAt(i + 1);
        continue;  // Re-check the (possibly longer) merged node.
      }
    }
    child->Normalize();
    ++i;
  }
}

std::unique_ptr<Node> Node::RemoveChild(Node* child) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) {
      std::unique_ptr<Node> out = std::move(children_[i]);
      children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
      out->parent_ = nullptr;
      return out;
    }
  }
  return nullptr;
}

void Node::RemoveChildAt(size_t i) {
  assert(i < children_.size());
  children_[i]->parent_ = nullptr;
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
}

Element* Node::ParentElement() const {
  Node* p = parent_;
  while (p != nullptr && p->type_ != NodeType::kElement) p = p->parent_;
  return p != nullptr ? static_cast<Element*>(p) : nullptr;
}

Element* Node::AsElement() {
  return IsElement() ? static_cast<Element*>(this) : nullptr;
}
const Element* Node::AsElement() const {
  return IsElement() ? static_cast<const Element*>(this) : nullptr;
}
Attr* Node::AsAttr() {
  return IsAttribute() ? static_cast<Attr*>(this) : nullptr;
}
const Attr* Node::AsAttr() const {
  return IsAttribute() ? static_cast<const Attr*>(this) : nullptr;
}

std::unique_ptr<Node> Attr::Clone(bool /*deep*/) const {
  auto copy = std::make_unique<Attr>(name_, value_);
  copy->set_defaulted(defaulted_);
  copy->set_source_position(line(), column());
  return copy;
}

std::unique_ptr<Node> Element::Clone(bool deep) const {
  auto copy = std::make_unique<Element>(tag_);
  copy->set_source_position(line(), column());
  for (const auto& attr : attributes_) {
    std::unique_ptr<Node> a = attr->Clone(true);
    std::unique_ptr<Attr> owned(static_cast<Attr*>(a.release()));
    Status s = copy->AddAttribute(std::move(owned));
    assert(s.ok());
    (void)s;
  }
  if (deep) {
    for (const auto& child : children_) {
      copy->AppendChild(child->Clone(true));
    }
  }
  return copy;
}

std::optional<std::string> Element::GetAttribute(std::string_view name) const {
  const Attr* attr = FindAttribute(name);
  if (attr == nullptr) return std::nullopt;
  return attr->value();
}

Attr* Element::FindAttribute(std::string_view name) {
  for (const auto& attr : attributes_) {
    if (attr->name() == name) return attr.get();
  }
  return nullptr;
}

const Attr* Element::FindAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr->name() == name) return attr.get();
  }
  return nullptr;
}

Attr* Element::SetAttribute(std::string_view name, std::string_view value) {
  Attr* existing = FindAttribute(name);
  if (existing != nullptr) {
    existing->set_value(std::string(value));
    return existing;
  }
  auto attr = std::make_unique<Attr>(std::string(name), std::string(value));
  attr->parent_ = this;
  attributes_.push_back(std::move(attr));
  return attributes_.back().get();
}

Status Element::AddAttribute(std::unique_ptr<Attr> attr) {
  if (FindAttribute(attr->name()) != nullptr) {
    return Status::AlreadyExists("duplicate attribute '" + attr->name() +
                                 "' on element '" + tag_ + "'");
  }
  attr->parent_ = this;
  attributes_.push_back(std::move(attr));
  return Status::OK();
}

bool Element::RemoveAttribute(std::string_view name) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i]->name() == name) {
      attributes_.erase(attributes_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::vector<Element*> Element::ChildElements() const {
  std::vector<Element*> out;
  for (const auto& child : children_) {
    if (child->IsElement()) out.push_back(static_cast<Element*>(child.get()));
  }
  return out;
}

Element* Element::FirstChildElement(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->IsElement()) {
      auto* el = static_cast<Element*>(child.get());
      if (el->tag() == tag) return el;
    }
  }
  return nullptr;
}

std::vector<Element*> Element::GetElementsByTagName(std::string_view tag) const {
  std::vector<Element*> out;
  // Pre-order descent, excluding this element itself (DOM semantics).
  std::function<void(const Element*)> visit = [&](const Element* el) {
    for (const auto& child : el->children()) {
      if (child->IsElement()) {
        auto* ce = static_cast<Element*>(child.get());
        if (tag == "*" || ce->tag() == tag) out.push_back(ce);
        visit(ce);
      }
    }
  };
  visit(this);
  return out;
}

std::string Element::TextContent() const {
  std::string out;
  std::function<void(const Node*)> visit = [&](const Node* node) {
    for (const auto& child : node->children()) {
      if (child->IsText()) {
        out += static_cast<const Text*>(child.get())->data();
      } else if (child->IsElement()) {
        visit(child.get());
      }
    }
  };
  visit(this);
  return out;
}

void Element::AppendText(std::string_view data) {
  AppendChild(std::make_unique<Text>(std::string(data)));
}

std::unique_ptr<Node> Text::Clone(bool /*deep*/) const {
  auto copy = std::make_unique<Text>(data_, type() == NodeType::kCData);
  copy->set_source_position(line(), column());
  return copy;
}

std::unique_ptr<Node> Comment::Clone(bool /*deep*/) const {
  auto copy = std::make_unique<Comment>(data_);
  copy->set_source_position(line(), column());
  return copy;
}

std::unique_ptr<Node> ProcessingInstruction::Clone(bool /*deep*/) const {
  auto copy = std::make_unique<ProcessingInstruction>(target_, data_);
  copy->set_source_position(line(), column());
  return copy;
}

Document::~Document() = default;

std::unique_ptr<Node> Document::Clone(bool deep) const {
  auto copy = std::make_unique<Document>();
  if (has_xml_decl_) copy->SetXmlDecl(version_, encoding_, standalone_);
  copy->doctype_name_ = doctype_name_;
  copy->doctype_system_id_ = doctype_system_id_;
  if (dtd_ != nullptr) copy->set_dtd(std::make_unique<Dtd>(*dtd_));
  if (deep) {
    for (const auto& child : children_) {
      copy->AppendChild(child->Clone(true));
    }
  }
  copy->Reindex();
  return copy;
}

Element* Document::root() const {
  for (const auto& child : children_) {
    if (child->IsElement()) return static_cast<Element*>(child.get());
  }
  return nullptr;
}

void Document::set_dtd(std::unique_ptr<Dtd> dtd) { dtd_ = std::move(dtd); }

void Document::Reindex() {
  int64_t counter = 0;
  std::function<void(Node*)> visit = [&](Node* node) {
    node->doc_order_ = counter++;
    if (Element* el = node->AsElement()) {
      for (const auto& attr : el->attributes()) {
        attr->doc_order_ = counter++;
      }
    }
    for (const auto& child : node->children_) {
      visit(child.get());
    }
  };
  visit(this);
  node_count_ = counter;
}

void ForEachNode(Node* node, const std::function<void(Node*)>& fn) {
  fn(node);
  if (Element* el = node->AsElement()) {
    for (const auto& attr : el->attributes()) fn(attr.get());
  }
  for (const auto& child : node->children()) {
    ForEachNode(child.get(), fn);
  }
}

void ForEachNode(const Node* node,
                 const std::function<void(const Node*)>& fn) {
  fn(node);
  if (const Element* el = node->AsElement()) {
    for (const auto& attr : el->attributes()) fn(attr.get());
  }
  for (const auto& child : node->children()) {
    const Node* c = child.get();
    ForEachNode(c, fn);
  }
}

bool IsAncestorOrSelf(const Node* maybe_ancestor, const Node* node) {
  for (const Node* cur = node; cur != nullptr; cur = cur->parent()) {
    if (cur == maybe_ancestor) return true;
  }
  return false;
}

}  // namespace xml
}  // namespace xmlsec
