#ifndef XMLSEC_XML_CONTENT_MODEL_H_
#define XMLSEC_XML_CONTENT_MODEL_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// Compiled recognizer for one element content model.
///
/// The EBNF-style content particle is compiled to a Thompson NFA over the
/// alphabet of child element names; matching simulates the NFA with
/// epsilon closures.  This accepts exactly the language of the content
/// model.  (XML 1.0 additionally requires content models to be
/// *deterministic*; we do not reject non-deterministic models — NFA
/// simulation handles them — which makes the validator strictly more
/// permissive, never less.)
class ContentModelMatcher {
 public:
  /// Compiles `particle`.  The matcher is immutable afterwards and safe
  /// for concurrent use.
  explicit ContentModelMatcher(const ContentParticle& particle);

  /// True when the sequence of child element names is in the model's
  /// language.
  bool Matches(const std::vector<std::string_view>& names) const;

  /// Number of NFA states (exposed for tests and benchmarks).
  size_t state_count() const { return states_.size(); }

 private:
  struct State {
    /// Transitions on a symbol id.
    std::vector<std::pair<int, int>> moves;
    /// Epsilon transitions.
    std::vector<int> eps;
  };

  struct Fragment {
    int start;
    int accept;
  };

  int NewState();
  Fragment Compile(const ContentParticle& particle);
  Fragment ApplyCardinality(Fragment inner, Cardinality cardinality);
  int SymbolId(const std::string& name);
  void EpsClosure(std::vector<char>* set) const;

  std::vector<State> states_;
  std::map<std::string, int, std::less<>> symbols_;
  int start_ = 0;
  int accept_ = 0;
};

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_CONTENT_MODEL_H_
