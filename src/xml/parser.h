#ifndef XMLSEC_XML_PARSER_H_
#define XMLSEC_XML_PARSER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// Resolves an external identifier (DTD SYSTEM id) to its text.
/// Supplied by the embedding application (e.g. the document repository);
/// the parser itself performs no I/O.
using ExternalResolver =
    std::function<Result<std::string>(std::string_view system_id)>;

/// Knobs for `ParseDocument`.
struct ParseOptions {
  /// Keep comment nodes in the tree.
  bool keep_comments = true;
  /// Keep processing-instruction nodes in the tree.
  bool keep_processing_instructions = true;
  /// Drop text nodes that consist purely of whitespace and sit between
  /// element children (markup pretty-printing).  Off by default: the XML
  /// spec keeps all character data.
  bool strip_ignorable_whitespace = false;
  /// Used to load the external DTD subset referenced by `<!DOCTYPE name
  /// SYSTEM "...">`.  When unset, external subsets are recorded by system
  /// id but not loaded.
  ExternalResolver resolver;
  /// Maximum element nesting depth.  The parser recurses per level, so
  /// this bounds stack use on adversarial input ("billion-opens").
  int max_depth = 512;
};

/// Parses a complete XML document (prolog, one root element, epilog),
/// checking well-formedness: proper nesting, matching end tags, attribute
/// uniqueness, legal references.  The internal DTD subset (and external
/// subset when a resolver is given) is parsed and attached to the
/// document; *validity* is checked separately by `Validator`.
Result<std::unique_ptr<Document>> ParseDocument(std::string_view text,
                                                const ParseOptions& options);

/// Convenience overload with default options.
Result<std::unique_ptr<Document>> ParseDocument(std::string_view text);

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_PARSER_H_
