#ifndef XMLSEC_XML_DTD_H_
#define XMLSEC_XML_DTD_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlsec {
namespace xml {

/// Occurrence indicator of a content particle — the EBNF-style labels of
/// XML 1.0 element declarations (`?`, `*`, `+`, or none).
enum class Cardinality {
  kOne,         ///< exactly one (no label)
  kOptional,    ///< `?` — zero or one
  kZeroOrMore,  ///< `*`
  kOneOrMore,   ///< `+`
};

std::string_view CardinalitySuffix(Cardinality c);

/// A node of an element content model: either an element name or a
/// sequence / choice group, each with an occurrence indicator.
struct ContentParticle {
  enum class Kind { kName, kSequence, kChoice };

  Kind kind = Kind::kName;
  std::string name;                       ///< set when kind == kName
  std::vector<ContentParticle> children;  ///< set for groups
  Cardinality cardinality = Cardinality::kOne;

  /// Renders back to DTD syntax, e.g. `(a,(b|c)*,d?)`.
  std::string ToString() const;
};

/// Category of element content.
enum class ContentKind {
  kEmpty,     ///< EMPTY
  kAny,       ///< ANY
  kMixed,     ///< (#PCDATA | name | ...)*  or bare (#PCDATA)
  kChildren,  ///< deterministic child-element content model
};

/// `<!ELEMENT name content>`.
struct ElementDecl {
  std::string name;
  ContentKind content_kind = ContentKind::kAny;
  /// Element names admitted in mixed content (kMixed only).
  std::vector<std::string> mixed_names;
  /// Content model (kChildren only).
  std::optional<ContentParticle> particle;

  /// Renders the content specification in DTD syntax.
  std::string ContentToString() const;
};

/// XML 1.0 attribute types.
enum class AttrType {
  kCData,
  kId,
  kIdRef,
  kIdRefs,
  kEntity,
  kEntities,
  kNmToken,
  kNmTokens,
  kNotation,
  kEnumeration,
};

std::string_view AttrTypeToString(AttrType t);

/// XML 1.0 attribute default kinds.
enum class AttrDefaultKind {
  kRequired,  ///< #REQUIRED
  kImplied,   ///< #IMPLIED
  kFixed,     ///< #FIXED "value"
  kDefault,   ///< "value"
};

/// One attribute definition inside `<!ATTLIST element ...>`.
struct AttrDecl {
  std::string name;
  AttrType type = AttrType::kCData;
  /// Allowed tokens for kEnumeration / kNotation types.
  std::vector<std::string> enum_values;
  AttrDefaultKind default_kind = AttrDefaultKind::kImplied;
  /// Default (or fixed) value for kFixed / kDefault.
  std::string default_value;
};

/// `<!ENTITY name "value">` (internal) or `<!ENTITY name SYSTEM "uri">`
/// (external — recorded but not fetched; resolution is injected by the
/// caller when needed).
struct EntityDecl {
  std::string name;
  bool is_parameter = false;
  bool is_external = false;
  std::string value;      ///< replacement text (internal entities)
  std::string public_id;  ///< external entities
  std::string system_id;
  std::string ndata;      ///< notation name for unparsed entities
};

/// `<!NOTATION name PUBLIC|SYSTEM ...>`.
struct NotationDecl {
  std::string name;
  std::string public_id;
  std::string system_id;
};

/// A parsed Document Type Definition: the schema of the paper's
/// schema-level authorizations.
///
/// Value-semantic (copyable) so that documents can own private copies and
/// the loosening transformation can produce derived DTDs.
class Dtd {
 public:
  Dtd() = default;

  /// Name of the expected root element (from `<!DOCTYPE name ...>`);
  /// empty when the DTD was parsed standalone.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Element declarations -------------------------------------------

  /// Registers an element declaration; duplicate declarations are a
  /// validity error in XML 1.0.
  Status AddElementDecl(ElementDecl decl);

  const ElementDecl* FindElement(std::string_view name) const;
  const std::map<std::string, ElementDecl>& elements() const {
    return elements_;
  }

  // --- Attribute-list declarations ------------------------------------

  /// Merges an attribute definition for `element`.  Per XML 1.0, when the
  /// same attribute is declared twice the first declaration is binding
  /// (the second is ignored, not an error).
  void AddAttrDecl(std::string_view element, AttrDecl decl);

  const AttrDecl* FindAttr(std::string_view element,
                           std::string_view attr) const;
  const std::vector<AttrDecl>* FindAttlist(std::string_view element) const;
  const std::map<std::string, std::vector<AttrDecl>>& attlists() const {
    return attlists_;
  }

  // --- Entities and notations -----------------------------------------

  /// Registers an entity.  Per XML 1.0 the first binding wins; a repeat
  /// declaration is silently ignored.
  void AddEntity(EntityDecl decl);

  /// Finds a general (`is_parameter == false`) or parameter entity.
  const EntityDecl* FindEntity(std::string_view name, bool parameter) const;
  const std::map<std::string, EntityDecl>& general_entities() const {
    return general_entities_;
  }
  const std::map<std::string, EntityDecl>& parameter_entities() const {
    return parameter_entities_;
  }

  Status AddNotation(NotationDecl decl);
  const NotationDecl* FindNotation(std::string_view name) const;
  const std::map<std::string, NotationDecl>& notations() const {
    return notations_;
  }

  /// True when this DTD declares nothing at all.
  bool empty() const {
    return elements_.empty() && attlists_.empty() &&
           general_entities_.empty() && parameter_entities_.empty() &&
           notations_.empty();
  }

 private:
  std::string name_;
  std::map<std::string, ElementDecl> elements_;
  std::map<std::string, std::vector<AttrDecl>> attlists_;
  std::map<std::string, EntityDecl> general_entities_;
  std::map<std::string, EntityDecl> parameter_entities_;
  std::map<std::string, NotationDecl> notations_;
};

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_DTD_H_
