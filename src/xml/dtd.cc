#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

std::string_view CardinalitySuffix(Cardinality c) {
  switch (c) {
    case Cardinality::kOne:
      return "";
    case Cardinality::kOptional:
      return "?";
    case Cardinality::kZeroOrMore:
      return "*";
    case Cardinality::kOneOrMore:
      return "+";
  }
  return "";
}

std::string ContentParticle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kName:
      out = name;
      break;
    case Kind::kSequence:
    case Kind::kChoice: {
      const char sep = kind == Kind::kSequence ? ',' : '|';
      out.push_back('(');
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out.push_back(sep);
        out.append(children[i].ToString());
      }
      out.push_back(')');
      break;
    }
  }
  out += CardinalitySuffix(cardinality);
  return out;
}

std::string ElementDecl::ContentToString() const {
  switch (content_kind) {
    case ContentKind::kEmpty:
      return "EMPTY";
    case ContentKind::kAny:
      return "ANY";
    case ContentKind::kMixed: {
      if (mixed_names.empty()) return "(#PCDATA)";
      std::string out = "(#PCDATA";
      for (const std::string& n : mixed_names) {
        out += "|";
        out += n;
      }
      out += ")*";
      return out;
    }
    case ContentKind::kChildren:
      return particle.has_value() ? particle->ToString() : "ANY";
  }
  return "ANY";
}

std::string_view AttrTypeToString(AttrType t) {
  switch (t) {
    case AttrType::kCData:
      return "CDATA";
    case AttrType::kId:
      return "ID";
    case AttrType::kIdRef:
      return "IDREF";
    case AttrType::kIdRefs:
      return "IDREFS";
    case AttrType::kEntity:
      return "ENTITY";
    case AttrType::kEntities:
      return "ENTITIES";
    case AttrType::kNmToken:
      return "NMTOKEN";
    case AttrType::kNmTokens:
      return "NMTOKENS";
    case AttrType::kNotation:
      return "NOTATION";
    case AttrType::kEnumeration:
      return "";  // rendered as the enumeration itself
  }
  return "CDATA";
}

Status Dtd::AddElementDecl(ElementDecl decl) {
  auto [it, inserted] = elements_.emplace(decl.name, std::move(decl));
  if (!inserted) {
    return Status::ValidationError("element '" + it->first +
                                   "' declared more than once");
  }
  return Status::OK();
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = elements_.find(std::string(name));
  return it == elements_.end() ? nullptr : &it->second;
}

void Dtd::AddAttrDecl(std::string_view element, AttrDecl decl) {
  std::vector<AttrDecl>& list = attlists_[std::string(element)];
  for (const AttrDecl& existing : list) {
    if (existing.name == decl.name) return;  // First declaration wins.
  }
  list.push_back(std::move(decl));
}

const AttrDecl* Dtd::FindAttr(std::string_view element,
                              std::string_view attr) const {
  const std::vector<AttrDecl>* list = FindAttlist(element);
  if (list == nullptr) return nullptr;
  for (const AttrDecl& decl : *list) {
    if (decl.name == attr) return &decl;
  }
  return nullptr;
}

const std::vector<AttrDecl>* Dtd::FindAttlist(std::string_view element) const {
  auto it = attlists_.find(std::string(element));
  return it == attlists_.end() ? nullptr : &it->second;
}

void Dtd::AddEntity(EntityDecl decl) {
  auto& table = decl.is_parameter ? parameter_entities_ : general_entities_;
  table.emplace(decl.name, std::move(decl));  // First binding wins.
}

const EntityDecl* Dtd::FindEntity(std::string_view name,
                                  bool parameter) const {
  const auto& table = parameter ? parameter_entities_ : general_entities_;
  auto it = table.find(std::string(name));
  return it == table.end() ? nullptr : &it->second;
}

Status Dtd::AddNotation(NotationDecl decl) {
  auto [it, inserted] = notations_.emplace(decl.name, std::move(decl));
  if (!inserted) {
    return Status::ValidationError("notation '" + it->first +
                                   "' declared more than once");
  }
  return Status::OK();
}

const NotationDecl* Dtd::FindNotation(std::string_view name) const {
  auto it = notations_.find(std::string(name));
  return it == notations_.end() ? nullptr : &it->second;
}

}  // namespace xml
}  // namespace xmlsec
