#ifndef XMLSEC_XML_DTD_PARSER_H_
#define XMLSEC_XML_DTD_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// Parses a standalone DTD (an external subset file, or the body of an
/// internal subset between `[` and `]`).
///
/// Supported markup: `<!ELEMENT>`, `<!ATTLIST>`, `<!ENTITY>` (general and
/// parameter, internal and external), `<!NOTATION>`, comments, processing
/// instructions, and conditional sections (`<![INCLUDE[`, `<![IGNORE[`).
/// Parameter-entity references are textually expanded with a recursion
/// limit, following external-subset semantics (recognized anywhere outside
/// comments).
Result<std::unique_ptr<Dtd>> ParseDtd(std::string_view text);

/// Same as `ParseDtd` but merges declarations into an existing DTD
/// (used to combine internal and external subsets; per XML 1.0 the
/// internal subset is processed first and its bindings win for entities
/// and attribute definitions).
Status ParseDtdInto(std::string_view text, Dtd* dtd);

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_DTD_PARSER_H_
