#ifndef XMLSEC_XML_CANONICAL_H_
#define XMLSEC_XML_CANONICAL_H_

#include <string>

#include "xml/dom.h"

namespace xmlsec {
namespace xml {

/// Canonical rendering in the spirit of W3C Canonical XML (C14N),
/// restricted to this library's data model: UTF-8, no XML declaration or
/// DOCTYPE, attributes sorted by name, empty elements written as
/// start/end pairs, adjacent text merged, CDATA folded into text,
/// comments and processing instructions dropped, and the C14N escape set
/// (`&`, `<`, `>` in text; `&`, `<`, `"`, tab, CR, LF in attributes).
///
/// Two documents have equal canonical forms iff they carry the same
/// content under these rules — the right equality for comparing computed
/// views, caching, and signing.
std::string CanonicalXml(const Document& doc);

/// Canonical form of a single subtree.
std::string CanonicalXml(const Node& node);

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_CANONICAL_H_
