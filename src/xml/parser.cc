#include "xml/parser.h"

#include <cstdint>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "xml/cursor.h"
#include "xml/dtd_parser.h"

namespace xmlsec {
namespace xml {

namespace {

constexpr int kMaxEntityDepth = 32;

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class XmlParser {
 public:
  XmlParser(std::string_view text, const ParseOptions& options,
            const Dtd* entity_source, int entity_depth)
      : cur_(text),
        options_(options),
        entity_source_(entity_source),
        entity_depth_(entity_depth) {}

  Status ParseDocumentNode(Document* doc) {
    XMLSEC_RETURN_IF_ERROR(MaybeParseXmlDecl(doc));
    XMLSEC_RETURN_IF_ERROR(ParseMisc(doc));
    if (cur_.LookingAt("<!DOCTYPE")) {
      XMLSEC_RETURN_IF_ERROR(ParseDoctype(doc));
      entity_source_ = doc->dtd();
      XMLSEC_RETURN_IF_ERROR(ParseMisc(doc));
    }
    if (cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    XMLSEC_RETURN_IF_ERROR(ParseElement(doc));
    XMLSEC_RETURN_IF_ERROR(ParseMisc(doc));
    if (!cur_.AtEnd()) {
      return cur_.Error("content after document end");
    }
    return Status::OK();
  }

  /// Parses a sequence of content items (text, elements, CDATA, comments,
  /// PIs, entity references) until end of input — used for the
  /// replacement text of general entities.
  Status ParseContentFragment(Node* parent) {
    return ParseContent(parent, /*expect_end_tag=*/false, "");
  }

 private:
  // --- Prolog ----------------------------------------------------------

  Status MaybeParseXmlDecl(Document* doc) {
    if (!cur_.LookingAt("<?xml")) return Status::OK();
    // Must be followed by whitespace to be a declaration (and not a PI
    // named e.g. "xml-stylesheet").
    if (!IsXmlSpace(cur_.PeekAt(5))) return Status::OK();
    cur_.Match("<?xml");
    std::string version = "1.0";
    std::string encoding = "UTF-8";
    bool standalone = false;
    cur_.SkipSpace();
    if (!cur_.Match("version")) return cur_.Error("expected 'version'");
    XMLSEC_RETURN_IF_ERROR(ParseEq());
    XMLSEC_ASSIGN_OR_RETURN(version, ParseQuotedLiteral());
    cur_.SkipSpace();
    if (cur_.Match("encoding")) {
      XMLSEC_RETURN_IF_ERROR(ParseEq());
      XMLSEC_ASSIGN_OR_RETURN(encoding, ParseQuotedLiteral());
      cur_.SkipSpace();
    }
    if (cur_.Match("standalone")) {
      XMLSEC_RETURN_IF_ERROR(ParseEq());
      XMLSEC_ASSIGN_OR_RETURN(std::string value, ParseQuotedLiteral());
      if (value == "yes") {
        standalone = true;
      } else if (value == "no") {
        standalone = false;
      } else {
        return cur_.Error("standalone must be 'yes' or 'no'");
      }
      cur_.SkipSpace();
    }
    if (!cur_.Match("?>")) return cur_.Error("expected '?>'");
    doc->SetXmlDecl(std::move(version), std::move(encoding), standalone);
    return Status::OK();
  }

  Status ParseEq() {
    cur_.SkipSpace();
    if (!cur_.Match("=")) return cur_.Error("expected '='");
    cur_.SkipSpace();
    return Status::OK();
  }

  Result<std::string> ParseQuotedLiteral() {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted literal");
    }
    cur_.Advance();
    std::string out;
    while (!cur_.AtEnd() && cur_.Peek() != quote) out.push_back(cur_.Advance());
    if (cur_.AtEnd()) return cur_.Error("unterminated literal");
    cur_.Advance();
    return out;
  }

  /// Misc ::= Comment | PI | S — between prolog parts and after the root.
  Status ParseMisc(Document* doc) {
    while (true) {
      cur_.SkipSpace();
      if (cur_.LookingAt("<!--")) {
        XMLSEC_RETURN_IF_ERROR(ParseComment(doc));
      } else if (cur_.LookingAt("<?") && !cur_.LookingAt("<?xml ")) {
        XMLSEC_RETURN_IF_ERROR(ParsePi(doc));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseDoctype(Document* doc) {
    cur_.Match("<!DOCTYPE");
    if (!cur_.SkipSpace()) return cur_.Error("expected space after <!DOCTYPE");
    std::string name = cur_.ReadName();
    if (name.empty()) return cur_.Error("expected document type name");
    doc->set_doctype_name(name);
    cur_.SkipSpace();
    std::string system_id;
    if (cur_.Match("SYSTEM")) {
      cur_.SkipSpace();
      XMLSEC_ASSIGN_OR_RETURN(system_id, ParseQuotedLiteral());
      cur_.SkipSpace();
    } else if (cur_.Match("PUBLIC")) {
      cur_.SkipSpace();
      XMLSEC_RETURN_IF_ERROR(ParseQuotedLiteral().status());
      cur_.SkipSpace();
      XMLSEC_ASSIGN_OR_RETURN(system_id, ParseQuotedLiteral());
      cur_.SkipSpace();
    }
    doc->set_doctype_system_id(system_id);

    auto dtd = std::make_unique<Dtd>();
    dtd->set_name(name);
    if (cur_.Match("[")) {
      size_t begin = cur_.pos();
      XMLSEC_RETURN_IF_ERROR(SkipInternalSubset());
      std::string_view subset = cur_.Slice(begin, cur_.pos() - 1);
      XMLSEC_RETURN_IF_ERROR(ParseDtdInto(subset, dtd.get()));
      cur_.SkipSpace();
    }
    if (!system_id.empty() && options_.resolver) {
      Result<std::string> external = options_.resolver(system_id);
      if (!external.ok()) return external.status();
      // Internal subset was parsed first; its bindings win (XML 1.0).
      XMLSEC_RETURN_IF_ERROR(ParseDtdInto(*external, dtd.get()));
    }
    if (!cur_.Match(">")) return cur_.Error("expected '>' closing <!DOCTYPE");
    doc->set_dtd(std::move(dtd));
    return Status::OK();
  }

  /// Advances past the internal subset up to and including the closing
  /// ']', skipping quoted literals and comments.
  Status SkipInternalSubset() {
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if (c == ']') {
        cur_.Advance();
        return Status::OK();
      }
      if (c == '"' || c == '\'') {
        cur_.Advance();
        while (!cur_.AtEnd() && cur_.Peek() != c) cur_.Advance();
        if (cur_.AtEnd()) return cur_.Error("unterminated literal in DTD");
        cur_.Advance();
      } else if (cur_.LookingAt("<!--")) {
        cur_.Match("<!--");
        while (!cur_.AtEnd() && !cur_.Match("-->")) cur_.Advance();
      } else {
        cur_.Advance();
      }
    }
    return cur_.Error("unterminated internal DTD subset");
  }

  // --- Content ---------------------------------------------------------

  Status ParseElement(Node* parent) {
    if (++element_depth_ > options_.max_depth) {
      return cur_.Error("element nesting exceeds max_depth (" +
                        std::to_string(options_.max_depth) + ")");
    }
    Status status = ParseElementImpl(parent);
    --element_depth_;
    return status;
  }

  Status ParseElementImpl(Node* parent) {
    int start_line = cur_.line();
    int start_col = cur_.column();
    if (!cur_.Match("<")) return cur_.Error("expected '<'");
    std::string tag = cur_.ReadName();
    if (tag.empty()) return cur_.Error("expected element name");
    auto element = std::make_unique<Element>(tag);
    element->set_source_position(start_line, start_col);
    Element* el = element.get();
    parent->AppendChild(std::move(element));

    XMLSEC_RETURN_IF_ERROR(ParseAttributes(el));
    cur_.SkipSpace();
    if (cur_.Match("/>")) return Status::OK();
    if (!cur_.Match(">")) return cur_.Error("expected '>' or '/>'");
    XMLSEC_RETURN_IF_ERROR(ParseContent(el, /*expect_end_tag=*/true, tag));
    return Status::OK();
  }

  Status ParseAttributes(Element* el) {
    while (true) {
      bool spaced = cur_.SkipSpace();
      char c = cur_.Peek();
      if (c == '>' || c == '/' || c == '\0') return Status::OK();
      if (!spaced) return cur_.Error("expected whitespace before attribute");
      int line = cur_.line();
      int col = cur_.column();
      std::string name = cur_.ReadName();
      if (name.empty()) return cur_.Error("expected attribute name");
      XMLSEC_RETURN_IF_ERROR(ParseEq());
      XMLSEC_ASSIGN_OR_RETURN(std::string value, ParseAttValue());
      auto attr = std::make_unique<Attr>(std::move(name), std::move(value));
      attr->set_source_position(line, col);
      Status added = el->AddAttribute(std::move(attr));
      if (!added.ok()) return cur_.Error(added.message());
    }
  }

  /// AttValue with normalization: references expanded, literal whitespace
  /// characters replaced by spaces (XML 1.0 §3.3.3, CDATA normalization).
  Result<std::string> ParseAttValue() {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted attribute value");
    }
    cur_.Advance();
    std::string out;
    while (true) {
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
      char c = cur_.Peek();
      if (c == quote) {
        cur_.Advance();
        return out;
      }
      if (c == '<') {
        return cur_.Error("'<' not allowed in attribute value");
      }
      if (c == '&') {
        XMLSEC_RETURN_IF_ERROR(ExpandReferenceIntoText(&out, 0));
        continue;
      }
      cur_.Advance();
      out.push_back(IsXmlSpace(c) ? ' ' : c);
    }
  }

  Status ParseContent(Node* parent, bool expect_end_tag,
                      std::string_view tag) {
    std::string pending_text;
    int text_line = 0;
    int text_col = 0;
    std::function<void()> flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!(options_.strip_ignorable_whitespace &&
            IsXmlWhitespace(pending_text))) {
        auto text = std::make_unique<Text>(std::move(pending_text));
        text->set_source_position(text_line, text_col);
        parent->AppendChild(std::move(text));
      }
      pending_text.clear();
    };

    while (true) {
      if (cur_.AtEnd()) {
        if (expect_end_tag) {
          return cur_.Error("unexpected end of input inside element '" +
                            std::string(tag) + "'");
        }
        flush_text();
        return Status::OK();
      }
      char c = cur_.Peek();
      if (c == '<') {
        if (cur_.LookingAt("</")) {
          flush_text();
          if (!expect_end_tag) {
            return cur_.Error("unbalanced end tag in entity content");
          }
          cur_.Match("</");
          std::string end_name = cur_.ReadName();
          cur_.SkipSpace();
          if (!cur_.Match(">")) return cur_.Error("expected '>' in end tag");
          if (end_name != tag) {
            return cur_.Error("mismatched end tag </" + end_name +
                              ">, expected </" + std::string(tag) + ">");
          }
          return Status::OK();
        }
        if (cur_.LookingAt("<!--")) {
          flush_text();
          XMLSEC_RETURN_IF_ERROR(ParseComment(parent));
          continue;
        }
        if (cur_.LookingAt("<![CDATA[")) {
          flush_text();
          XMLSEC_RETURN_IF_ERROR(ParseCData(parent));
          continue;
        }
        if (cur_.LookingAt("<?")) {
          flush_text();
          XMLSEC_RETURN_IF_ERROR(ParsePi(parent));
          continue;
        }
        if (cur_.LookingAt("<!")) {
          return cur_.Error("unexpected markup declaration in content");
        }
        flush_text();
        XMLSEC_RETURN_IF_ERROR(ParseElement(parent));
        continue;
      }
      if (c == '&') {
        if (pending_text.empty()) {
          text_line = cur_.line();
          text_col = cur_.column();
        }
        XMLSEC_RETURN_IF_ERROR(
            ExpandReferenceIntoContent(parent, &pending_text, &flush_text));
        continue;
      }
      if (cur_.LookingAt("]]>")) {
        return cur_.Error("']]>' not allowed in character data");
      }
      if (pending_text.empty()) {
        text_line = cur_.line();
        text_col = cur_.column();
      }
      pending_text.push_back(cur_.Advance());
    }
  }

  Status ParseComment(Node* parent) {
    int line = cur_.line();
    int col = cur_.column();
    cur_.Match("<!--");
    std::string data;
    while (!cur_.AtEnd()) {
      if (cur_.Match("-->")) {
        if (options_.keep_comments) {
          auto node = std::make_unique<Comment>(std::move(data));
          node->set_source_position(line, col);
          parent->AppendChild(std::move(node));
        }
        return Status::OK();
      }
      if (cur_.LookingAt("--")) {
        return cur_.Error("'--' not allowed inside comment");
      }
      data.push_back(cur_.Advance());
    }
    return cur_.Error("unterminated comment");
  }

  Status ParseCData(Node* parent) {
    int line = cur_.line();
    int col = cur_.column();
    cur_.Match("<![CDATA[");
    std::string data;
    while (!cur_.AtEnd()) {
      if (cur_.Match("]]>")) {
        auto node = std::make_unique<Text>(std::move(data), /*cdata=*/true);
        node->set_source_position(line, col);
        parent->AppendChild(std::move(node));
        return Status::OK();
      }
      data.push_back(cur_.Advance());
    }
    return cur_.Error("unterminated CDATA section");
  }

  Status ParsePi(Node* parent) {
    int line = cur_.line();
    int col = cur_.column();
    cur_.Match("<?");
    std::string target = cur_.ReadName();
    if (target.empty()) return cur_.Error("expected PI target");
    if (AsciiToLower(target) == "xml") {
      return cur_.Error("PI target 'xml' is reserved");
    }
    std::string data;
    if (cur_.SkipSpace()) {
      while (!cur_.AtEnd() && !cur_.LookingAt("?>")) {
        data.push_back(cur_.Advance());
      }
    }
    if (!cur_.Match("?>")) return cur_.Error("unterminated PI");
    if (options_.keep_processing_instructions) {
      auto node = std::make_unique<ProcessingInstruction>(std::move(target),
                                                          std::move(data));
      node->set_source_position(line, col);
      parent->AppendChild(std::move(node));
    }
    return Status::OK();
  }

  // --- References ------------------------------------------------------

  /// Reads `&...;` at the cursor and returns the entity name, or expands
  /// a character reference / predefined entity directly into `*text`.
  /// Returns an empty name when the reference was fully handled.
  Result<std::string> ReadReference(std::string* text) {
    cur_.Match("&");
    if (cur_.Match("#")) {
      uint32_t cp = 0;
      bool any = false;
      if (cur_.Match("x") || cur_.Match("X")) {
        while (IsHexDigit(cur_.Peek())) {
          char c = cur_.Advance();
          cp = cp * 16 + static_cast<uint32_t>(IsDigit(c)    ? c - '0'
                                               : (c >= 'a') ? c - 'a' + 10
                                                            : c - 'A' + 10);
          any = true;
        }
      } else {
        while (IsDigit(cur_.Peek())) {
          cp = cp * 10 + static_cast<uint32_t>(cur_.Advance() - '0');
          any = true;
        }
      }
      if (!any || !cur_.Match(";")) {
        return cur_.Error("malformed character reference");
      }
      if (cp == 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
        return cur_.Error("character reference out of range");
      }
      AppendUtf8(cp, text);
      return std::string();
    }
    std::string name = cur_.ReadName();
    if (name.empty() || !cur_.Match(";")) {
      return cur_.Error("malformed entity reference");
    }
    if (name == "amp") {
      text->push_back('&');
      return std::string();
    }
    if (name == "lt") {
      text->push_back('<');
      return std::string();
    }
    if (name == "gt") {
      text->push_back('>');
      return std::string();
    }
    if (name == "apos") {
      text->push_back('\'');
      return std::string();
    }
    if (name == "quot") {
      text->push_back('"');
      return std::string();
    }
    return name;
  }

  /// Reference inside an attribute value: entity replacement text may not
  /// contain '<'; nested references are expanded recursively.
  Status ExpandReferenceIntoText(std::string* out, int depth) {
    if (depth > kMaxEntityDepth) {
      return cur_.Error("entity expansion exceeds depth limit");
    }
    XMLSEC_ASSIGN_OR_RETURN(std::string name, ReadReference(out));
    if (name.empty()) return Status::OK();
    const EntityDecl* decl = FindGeneralEntity(name);
    if (decl == nullptr) {
      return cur_.Error("undeclared entity '&" + name + ";'");
    }
    if (decl->is_external) {
      return cur_.Error("external entity '&" + name +
                        ";' not allowed in attribute value");
    }
    // The replacement text is scanned for further references; literal
    // whitespace normalizes to spaces as in direct attribute text.
    for (size_t i = 0; i < decl->value.size();) {
      char c = decl->value[i];
      if (c == '<') {
        return cur_.Error("entity '&" + name +
                          ";' expands to '<' inside attribute value");
      }
      if (c == '&') {
        // Delegate to a sub-parser over the remainder of the value.
        XmlParser sub(std::string_view(decl->value).substr(i), options_,
                      entity_source_, entity_depth_ + 1);
        std::string tail;
        XMLSEC_RETURN_IF_ERROR(sub.ExpandReferenceIntoText(&tail, depth + 1));
        out->append(tail);
        i += sub.cur_.pos();
        continue;
      }
      out->push_back(IsXmlSpace(c) ? ' ' : c);
      ++i;
    }
    return Status::OK();
  }

  /// Reference in element content: character refs and predefined entities
  /// become text; general entities are parsed as balanced content
  /// fragments (they may contain markup).
  Status ExpandReferenceIntoContent(Node* parent, std::string* pending_text,
                                    const std::function<void()>* flush_text) {
    XMLSEC_ASSIGN_OR_RETURN(std::string name, ReadReference(pending_text));
    if (name.empty()) return Status::OK();
    const EntityDecl* decl = FindGeneralEntity(name);
    if (decl == nullptr) {
      return cur_.Error("undeclared entity '&" + name + ";'");
    }
    if (decl->is_external) {
      return cur_.Error("external general entity '&" + name +
                        ";' is not supported in content");
    }
    if (!decl->ndata.empty()) {
      return cur_.Error("unparsed entity '&" + name +
                        ";' referenced in content");
    }
    if (entity_depth_ + 1 > kMaxEntityDepth) {
      return cur_.Error("entity expansion exceeds depth limit");
    }
    // Fast path: plain text replacement (no markup, no nested refs).
    if (decl->value.find_first_of("<&") == std::string::npos) {
      pending_text->append(decl->value);
      return Status::OK();
    }
    (*flush_text)();
    XmlParser sub(decl->value, options_, entity_source_, entity_depth_ + 1);
    sub.element_depth_ = element_depth_;  // Depth bound spans entities.
    Status status = sub.ParseContentFragment(parent);
    if (!status.ok()) {
      return Status::ParseError("in expansion of entity '&" + name +
                                ";': " + status.message());
    }
    return Status::OK();
  }

  const EntityDecl* FindGeneralEntity(std::string_view name) const {
    if (entity_source_ == nullptr) return nullptr;
    return entity_source_->FindEntity(name, /*parameter=*/false);
  }

  TextCursor cur_;
  const ParseOptions& options_;
  const Dtd* entity_source_;
  int entity_depth_;
  int element_depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<Document>> ParseDocument(std::string_view text,
                                                const ParseOptions& options) {
  // Fault-injection site: a parser fault must surface as a clean error
  // (registration refused, nothing half-stored), never a partial tree.
  XMLSEC_RETURN_IF_ERROR(failpoint::Check("xml.parse"));
  auto doc = std::make_unique<Document>();
  XmlParser parser(text, options, /*entity_source=*/nullptr,
                   /*entity_depth=*/0);
  XMLSEC_RETURN_IF_ERROR(parser.ParseDocumentNode(doc.get()));
  if (doc->root() == nullptr) {
    return Status::ParseError("document has no root element");
  }
  doc->Reindex();
  return doc;
}

Result<std::unique_ptr<Document>> ParseDocument(std::string_view text) {
  return ParseDocument(text, ParseOptions());
}

}  // namespace xml
}  // namespace xmlsec
