#ifndef XMLSEC_XML_CHARS_H_
#define XMLSEC_XML_CHARS_H_

namespace xmlsec {
namespace xml {

/// XML whitespace (production S).
inline bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

inline bool IsHexDigit(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

inline bool IsAsciiLetter(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// First character of an XML Name.  Multi-byte UTF-8 lead/continuation
/// bytes are accepted wholesale: the library stores names as raw UTF-8 and
/// does not re-validate Unicode classes (adequate for the access-control
/// semantics, which never inspect code points).
inline bool IsNameStartChar(char c) {
  return IsAsciiLetter(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

/// Subsequent character of an XML Name.
inline bool IsNameChar(char c) {
  return IsNameStartChar(c) || IsDigit(c) || c == '-' || c == '.';
}

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_CHARS_H_
