#include "xml/serializer.h"

#include "common/str_util.h"

namespace xmlsec {
namespace xml {

namespace {

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

/// True when `node` survives `filter` (no filter keeps everything).
bool Kept(const NodeFilter* filter, const Node* node) {
  return filter == nullptr || !*filter || (*filter)(node);
}

/// True when the element's children should each go on their own line:
/// pretty-printing must not alter mixed content.  Only children the
/// filter keeps count — a filtered tree must print like its pruned copy.
bool HasOnlyStructuralChildren(const Element& el, const NodeFilter* filter) {
  bool any = false;
  for (const auto& child : el.children()) {
    if (!Kept(filter, child.get())) continue;
    any = true;
    if (child->IsText() && !IsXmlWhitespace(child->NodeValue())) return false;
  }
  return any;
}

void SerializeNodeImpl(const Node& node, std::string* out, int indent,
                       int depth, const NodeFilter* filter) {
  switch (node.type()) {
    case NodeType::kDocument: {
      for (const auto& child : node.children()) {
        if (!Kept(filter, child.get())) continue;
        SerializeNodeImpl(*child, out, indent, depth, filter);
        if (indent >= 0) out->push_back('\n');
      }
      break;
    }
    case NodeType::kElement: {
      const auto& el = static_cast<const Element&>(node);
      out->push_back('<');
      out->append(el.tag());
      for (const auto& attr : el.attributes()) {
        if (!Kept(filter, attr.get())) continue;
        out->push_back(' ');
        out->append(attr->name());
        out->append("=\"");
        out->append(EscapeAttrValue(attr->value()));
        out->push_back('"');
      }
      bool any_child = false;
      for (const auto& child : el.children()) {
        if (Kept(filter, child.get())) {
          any_child = true;
          break;
        }
      }
      if (!any_child) {
        out->append("/>");
        break;
      }
      out->push_back('>');
      const bool structural =
          indent >= 0 && HasOnlyStructuralChildren(el, filter);
      for (const auto& child : el.children()) {
        if (!Kept(filter, child.get())) continue;
        if (structural && child->IsText()) continue;  // Old pretty-space.
        if (structural) AppendIndent(out, indent, depth + 1);
        SerializeNodeImpl(*child, out, indent, depth + 1, filter);
      }
      if (structural) AppendIndent(out, indent, depth);
      out->append("</");
      out->append(el.tag());
      out->push_back('>');
      break;
    }
    case NodeType::kAttribute: {
      const auto& attr = static_cast<const Attr&>(node);
      out->append(attr.name());
      out->append("=\"");
      out->append(EscapeAttrValue(attr.value()));
      out->push_back('"');
      break;
    }
    case NodeType::kText:
      out->append(EscapeText(node.NodeValue()));
      break;
    case NodeType::kCData: {
      out->append("<![CDATA[");
      out->append(node.NodeValue());  // Parser guarantees no "]]>" inside.
      out->append("]]>");
      break;
    }
    case NodeType::kComment: {
      out->append("<!--");
      out->append(node.NodeValue());
      out->append("-->");
      break;
    }
    case NodeType::kProcessingInstruction: {
      const auto& pi = static_cast<const ProcessingInstruction&>(node);
      out->append("<?");
      out->append(pi.target());
      if (!pi.data().empty()) {
        out->push_back(' ');
        out->append(pi.data());
      }
      out->append("?>");
      break;
    }
  }
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        // Only "]]>" requires escaping; escape every '>' for simplicity
        // and symmetry with common serializers.
        out.append("&gt;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttrValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\n':
        out.append("&#10;");
        break;
      case '\t':
        out.append("&#9;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options) {
  std::string out;
  if (options.xml_declaration) {
    out += "<?xml version=\"" + doc.version() + "\" encoding=\"" +
           doc.encoding() + "\"?>";
    if (options.indent >= 0) out.push_back('\n');
  }
  const std::string root_name =
      doc.root() != nullptr ? doc.root()->tag() : doc.doctype_name();
  switch (options.doctype) {
    case DoctypeMode::kNone:
      break;
    case DoctypeMode::kSystem:
      if (!doc.doctype_system_id().empty()) {
        out += "<!DOCTYPE " + root_name + " SYSTEM \"" +
               doc.doctype_system_id() + "\">";
        if (options.indent >= 0) out.push_back('\n');
      }
      break;
    case DoctypeMode::kInternal:
      if (doc.dtd() != nullptr) {
        out += "<!DOCTYPE " + root_name + " [\n";
        out += SerializeDtd(*doc.dtd());
        out += "]>";
        if (options.indent >= 0) out.push_back('\n');
      }
      break;
  }
  for (const auto& child : doc.children()) {
    SerializeNodeImpl(*child, &out, options.indent, 0, nullptr);
    if (options.indent >= 0) out.push_back('\n');
  }
  // Drop a trailing newline duplication.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  return out;
}

std::string SerializeNode(const Node& node, int indent) {
  std::string out;
  SerializeNodeImpl(node, &out, indent, 0, nullptr);
  return out;
}

std::string SerializeNodeFiltered(const Node& node, const NodeFilter& filter,
                                  int indent) {
  std::string out;
  SerializeNodeImpl(node, &out, indent, 0, &filter);
  return out;
}

namespace {

/// Escapes a DTD quoted literal (entity value or attribute default) so
/// that reparsing yields the same stored value: '&' would start a
/// reference, '%' a parameter-entity reference, '"' ends the literal.
std::string EscapeDtdLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out += "&#38;";
        break;
      case '"':
        out += "&#34;";
        break;
      case '%':
        out += "&#37;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void AppendAttlist(const std::string& element,
                   const std::vector<AttrDecl>& attrs, std::string* out) {
  *out += "<!ATTLIST " + element;
  for (const AttrDecl& attr : attrs) {
    *out += "\n  " + attr.name + " ";
    if (attr.type == AttrType::kEnumeration ||
        attr.type == AttrType::kNotation) {
      if (attr.type == AttrType::kNotation) *out += "NOTATION ";
      *out += "(";
      for (size_t i = 0; i < attr.enum_values.size(); ++i) {
        if (i > 0) *out += "|";
        *out += attr.enum_values[i];
      }
      *out += ")";
    } else {
      *out += std::string(AttrTypeToString(attr.type));
    }
    *out += " ";
    switch (attr.default_kind) {
      case AttrDefaultKind::kRequired:
        *out += "#REQUIRED";
        break;
      case AttrDefaultKind::kImplied:
        *out += "#IMPLIED";
        break;
      case AttrDefaultKind::kFixed:
        *out += "#FIXED \"" + EscapeDtdLiteral(attr.default_value) + "\"";
        break;
      case AttrDefaultKind::kDefault:
        *out += "\"" + EscapeDtdLiteral(attr.default_value) + "\"";
        break;
    }
  }
  *out += ">\n";
}

}  // namespace

std::string SerializeDtd(const Dtd& dtd) {
  std::string out;
  for (const auto& [name, decl] : dtd.elements()) {
    out += "<!ELEMENT " + name + " " + decl.ContentToString() + ">\n";
    const std::vector<AttrDecl>* attlist = dtd.FindAttlist(name);
    if (attlist != nullptr) AppendAttlist(name, *attlist, &out);
  }
  // Attlists for elements without element declarations (legal in XML).
  for (const auto& [element, attrs] : dtd.attlists()) {
    if (dtd.FindElement(element) != nullptr) continue;
    AppendAttlist(element, attrs, &out);
  }
  for (const auto& [name, entity] : dtd.general_entities()) {
    if (entity.is_external) {
      out += "<!ENTITY " + name + " SYSTEM \"" + entity.system_id + "\"";
      if (!entity.ndata.empty()) out += " NDATA " + entity.ndata;
      out += ">\n";
    } else {
      out += "<!ENTITY " + name + " \"" + EscapeDtdLiteral(entity.value) +
             "\">\n";
    }
  }
  for (const auto& [name, notation] : dtd.notations()) {
    out += "<!NOTATION " + name;
    if (!notation.public_id.empty()) {
      out += " PUBLIC \"" + notation.public_id + "\"";
      if (!notation.system_id.empty()) {
        out += " \"" + notation.system_id + "\"";
      }
    } else {
      out += " SYSTEM \"" + notation.system_id + "\"";
    }
    out += ">\n";
  }
  return out;
}

}  // namespace xml
}  // namespace xmlsec
