#ifndef XMLSEC_XML_SERIALIZER_H_
#define XMLSEC_XML_SERIALIZER_H_

#include <functional>
#include <string>

#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// How the document type declaration is emitted.
enum class DoctypeMode {
  kNone,      ///< omit the DOCTYPE line
  kSystem,    ///< `<!DOCTYPE name SYSTEM "uri">` (uri from the document)
  kInternal,  ///< inline the document's DTD as an internal subset
};

/// Knobs for `SerializeDocument`.
struct SerializeOptions {
  /// Emit `<?xml version=... ?>`.
  bool xml_declaration = true;
  DoctypeMode doctype = DoctypeMode::kNone;
  /// Pretty-print with this many spaces per nesting level; -1 emits the
  /// tree verbatim (exact character data round-trip).
  int indent = -1;
};

/// Escapes character data for element content (&, <, and the ]]> guard).
std::string EscapeText(std::string_view text);

/// Escapes an attribute value for double-quoted output (&, <, ").
std::string EscapeAttrValue(std::string_view value);

/// Unparses a DOM tree back to XML text — the "unparsing" step of the
/// paper's security processor (§7, step 4).
std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options = {});

/// Serializes a single subtree (element and descendants).
std::string SerializeNode(const Node& node, int indent = -1);

/// Subtree membership predicate for `SerializeNodeFiltered`: false hides
/// the node (and, for elements, its whole subtree).
using NodeFilter = std::function<bool(const Node*)>;

/// Serializes the subtree rooted at `node` as it would appear after
/// pruning: descendants and attributes failing `filter` are omitted, and
/// an element whose children are all filtered collapses to the empty
/// form (`<a/>`), byte-identical to serializing the pruned copy.  The
/// top node itself is not filtered — the caller decides its fate.  A
/// null filter serializes verbatim.
std::string SerializeNodeFiltered(const Node& node, const NodeFilter& filter,
                                  int indent = -1);

/// Renders a DTD as external-subset text (`<!ELEMENT ...>` lines) —
/// used to publish the loosened DTD next to a computed view.
std::string SerializeDtd(const Dtd& dtd);

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_SERIALIZER_H_
