#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace xmlsec {

namespace {
bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsSpaceChar(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsSpaceChar(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (IsSpaceChar(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool IsXmlWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsSpaceChar(c)) return false;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

int64_t ParseDecimal(std::string_view s) {
  if (s.empty() || s.size() > 18) return -1;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace xmlsec
