#ifndef XMLSEC_COMMON_FAILPOINT_H_
#define XMLSEC_COMMON_FAILPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlsec {
namespace failpoint {

/// Fault-injection registry for the fail-closed serving path.
///
/// A *failpoint* is a named site in the code where a test (or an
/// operator, via the `XMLSEC_FAILPOINTS` environment variable) can make
/// the next N executions fail with an `Internal` status.  The
/// enforcement point is audited so that a fault at ANY registered site
/// degrades into a denial-shaped response — never a partial or unpruned
/// view (see DESIGN.md, "Robustness model").
///
/// Sites are checked with `ShouldFail`/`Check`; the fast path (no
/// failpoint armed anywhere) is a single relaxed atomic load, so leaving
/// the checks compiled into production builds is essentially free.
///
/// `XMLSEC_FAILPOINTS` syntax: comma-separated `site` or `site=N`
/// entries, e.g. `XMLSEC_FAILPOINTS="authz.compute_view,server.cache_get=2"`.
/// A bare site fires on every execution; `=N` arms it for the next N
/// executions only.  The variable is read once, at the first failpoint
/// check anywhere in the process.

/// The registered failpoint taxonomy.  Tests sweep this list to prove
/// the fail-closed property at every site.
inline constexpr std::string_view kSites[] = {
    "xml.parse",            // document parsing (registration / replace)
    "repo.find_document",   // repository document lookup
    "repo.instance_auths",  // instance authorization-set lookup
    "repo.schema_auths",    // schema authorization-set lookup
    "authz.compute_view",   // security processor: labeling + prune
    "server.cache_get",     // view-cache probe
    "server.cache_put",     // view-cache insert (degrades, never denies)
    "server.query",         // XPath-over-view evaluation
    "rewrite.compile",      // query rewriting (guard insertion / oracle)
    "server.serialize",     // view unparse
    "server.audit",         // audit-trail append (no audit -> no view)
    "audit.wal_write",      // WAL frame write in the background writer
    "audit.wal_fsync",      // WAL group-commit fsync
    "server.reload",        // repository hot-reload (admin path)
    "update.apply",         // write batch: check + relabel + mutate clone
    "update.publish",       // write batch: snapshot swap after audit ack
};

/// All registered sites (the taxonomy above).
std::span<const std::string_view> Sites();

/// True when `site` is armed; consumes one firing when armed with a
/// finite count.  Thread-safe.
bool ShouldFail(std::string_view site);

/// `Internal("failpoint <site> fired")` when the site fires, OK
/// otherwise.  Convenient with `XMLSEC_RETURN_IF_ERROR`.
Status Check(std::string_view site);

/// Arms `site`: `times < 0` fires on every execution until `Disable`,
/// `times >= 0` fires on the next `times` executions.
void Enable(std::string_view site, int64_t times = -1);

void Disable(std::string_view site);
void DisableAll();

/// How many times `site` has fired since process start.
int64_t TriggerCount(std::string_view site);

/// Currently armed sites (diagnostics).
std::vector<std::string> EnabledSites();

}  // namespace failpoint
}  // namespace xmlsec

#endif  // XMLSEC_COMMON_FAILPOINT_H_
