#include "common/status.h"

namespace xmlsec {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace xmlsec
