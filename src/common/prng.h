#ifndef XMLSEC_COMMON_PRNG_H_
#define XMLSEC_COMMON_PRNG_H_

#include <cstdint>

namespace xmlsec {

/// Deterministic xorshift128+ generator for workload synthesis.
///
/// Workload generation must be reproducible across runs and platforms so
/// that benchmark series are comparable; std::mt19937 would also work but
/// a self-contained generator keeps the substrate dependency-free.
class Prng {
 public:
  explicit Prng(uint64_t seed) {
    // SplitMix64 seeding to avoid weak all-zero-ish states.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform value in [0, bound); bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace xmlsec

#endif  // XMLSEC_COMMON_PRNG_H_
