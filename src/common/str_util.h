#ifndef XMLSEC_COMMON_STR_UTIL_H_
#define XMLSEC_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xmlsec {

/// Splits `s` on `sep`, keeping empty fields ("a..b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive items.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only case conversion (XML names are case-sensitive; this is used
/// for protocol headers only).
std::string AsciiToLower(std::string_view s);

/// Collapses runs of XML whitespace (space, tab, CR, LF) into single
/// spaces and strips the ends — XPath `normalize-space` semantics.
std::string NormalizeSpace(std::string_view s);

/// True if every character of `s` is XML whitespace (or `s` is empty).
bool IsXmlWhitespace(std::string_view s);

/// Formats like printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a non-negative decimal integer; returns -1 on any malformation.
int64_t ParseDecimal(std::string_view s);

}  // namespace xmlsec

#endif  // XMLSEC_COMMON_STR_UTIL_H_
