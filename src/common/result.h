#ifndef XMLSEC_COMMON_RESULT_H_
#define XMLSEC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xmlsec {

/// Either a value of type `T` or a non-OK `Status` explaining why the
/// value could not be produced.  Mirrors `arrow::Result` / `absl::StatusOr`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define XMLSEC_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  XMLSEC_ASSIGN_OR_RETURN_IMPL_(                                  \
      XMLSEC_STATUS_MACROS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define XMLSEC_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

#define XMLSEC_STATUS_MACROS_CONCAT_(x, y) XMLSEC_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define XMLSEC_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

}  // namespace xmlsec

#endif  // XMLSEC_COMMON_RESULT_H_
