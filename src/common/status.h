#ifndef XMLSEC_COMMON_STATUS_H_
#define XMLSEC_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xmlsec {

/// Machine-readable classification of an error condition.
///
/// The set is intentionally small and stable; detail goes in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed value.
  kNotFound,          ///< A referenced entity (URI, user, ...) is unknown.
  kAlreadyExists,     ///< Attempt to redefine an existing entity.
  kParseError,        ///< Input text is not well-formed (XML, XPath, ...).
  kValidationError,   ///< Document violates its DTD.
  kPermissionDenied,  ///< The requester may not access the object at all.
  kUnauthenticated,   ///< Credentials missing or wrong.
  kUnimplemented,     ///< Feature recognized but not supported.
  kInternal,          ///< Invariant violation inside the library.
};

/// Returns the canonical spelling of a code, e.g. "ParseError".
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a human-readable
/// message.  `Status::OK()` is represented without allocation.
///
/// This library does not throw exceptions across its public API; every
/// fallible operation returns a `Status` or a `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// The singleton-like success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* empty = new std::string;
    return rep_ ? rep_->message : *empty;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression) and returns it from the
/// enclosing function if it is not OK.
#define XMLSEC_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::xmlsec::Status _status = (expr);              \
    if (!_status.ok()) return _status;              \
  } while (false)

}  // namespace xmlsec

#endif  // XMLSEC_COMMON_STATUS_H_
