#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/str_util.h"

namespace xmlsec {
namespace failpoint {

namespace {

struct Registry {
  std::mutex mutex;
  /// site -> remaining firings (-1 = unlimited).
  std::map<std::string, int64_t, std::less<>> armed;
  /// site -> times fired since process start.
  std::map<std::string, int64_t, std::less<>> triggers;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

/// Count of armed sites, mirrored outside the mutex so the disabled
/// fast path is a single relaxed load.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

void SyncArmedCountLocked(const Registry& registry) {
  ArmedCount().store(static_cast<int>(registry.armed.size()),
                     std::memory_order_relaxed);
}

void LoadFromEnv() {
  const char* spec = std::getenv("XMLSEC_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  for (const std::string& entry : SplitString(spec, ',')) {
    std::string_view item = StripAsciiWhitespace(entry);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      Enable(item);
    } else {
      int64_t times = -1;
      std::string count(StripAsciiWhitespace(item.substr(eq + 1)));
      char* end = nullptr;
      long long parsed = std::strtoll(count.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') times = parsed;
      Enable(StripAsciiWhitespace(item.substr(0, eq)), times);
    }
  }
}

void EnsureEnvLoaded() {
  static bool loaded = []() {
    LoadFromEnv();
    return true;
  }();
  (void)loaded;
}

}  // namespace

std::span<const std::string_view> Sites() { return kSites; }

bool ShouldFail(std::string_view site) {
  EnsureEnvLoaded();
  if (ArmedCount().load(std::memory_order_relaxed) == 0) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.armed.find(site);
  if (it == registry.armed.end()) return false;
  if (it->second > 0 && --it->second == 0) {
    registry.armed.erase(it);
    SyncArmedCountLocked(registry);
  }
  ++registry.triggers[std::string(site)];
  return true;
}

Status Check(std::string_view site) {
  if (ShouldFail(site)) {
    return Status::Internal("failpoint " + std::string(site) + " fired");
  }
  return Status::OK();
}

void Enable(std::string_view site, int64_t times) {
  if (times == 0) {
    Disable(site);
    return;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.armed[std::string(site)] = times;
  SyncArmedCountLocked(registry);
}

void Disable(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.armed.find(site);
  if (it != registry.armed.end()) registry.armed.erase(it);
  SyncArmedCountLocked(registry);
}

void DisableAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.armed.clear();
  SyncArmedCountLocked(registry);
}

int64_t TriggerCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.triggers.find(site);
  return it == registry.triggers.end() ? 0 : it->second;
}

std::vector<std::string> EnabledSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> out;
  out.reserve(registry.armed.size());
  for (const auto& [site, times] : registry.armed) out.push_back(site);
  return out;
}

}  // namespace failpoint
}  // namespace xmlsec
