#ifndef XMLSEC_AUTHZ_SUBJECT_H_
#define XMLSEC_AUTHZ_SUBJECT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xmlsec {
namespace authz {

/// A location pattern over either numeric IP addresses or symbolic host
/// names (paper §3).
///
/// Wildcard `*` components must be contiguous and sit at the *right* end
/// of IP patterns (`151.100.*.*`) and at the *left* end of symbolic
/// patterns (`*.lab.com`), matching the specificity direction of each
/// naming scheme.  `151.100.*` abbreviates `151.100.*.*`.  The single
/// pattern `*` matches every address of its kind.
class LocationPattern {
 public:
  enum class Kind { kIp, kSymbolic };

  /// Parses an IP pattern; rejects malformed octets or misplaced
  /// wildcards.
  static Result<LocationPattern> ParseIp(std::string_view text);

  /// Parses a symbolic-name pattern.
  static Result<LocationPattern> ParseSymbolic(std::string_view text);

  /// The universal pattern `*` of the given kind.
  static LocationPattern Any(Kind kind);

  Kind kind() const { return kind_; }

  /// True when this pattern matches the (fully concrete) address.
  bool Matches(std::string_view address) const;

  /// The partial order of the paper (≤ip / ≤sn): true when *this* is at
  /// least as specific as `other`, i.e. every component of `other` is
  /// either `*` or equal to the corresponding component of this pattern.
  /// Comparison is position-wise left-to-right for IPs and right-to-left
  /// for symbolic names.
  bool LessEq(const LocationPattern& other) const;

  /// True when the pattern contains no wildcard.
  bool IsConcrete() const;

  std::string ToString() const;

  friend bool operator==(const LocationPattern& a, const LocationPattern& b) {
    return a.kind_ == b.kind_ && a.components_ == b.components_;
  }

 private:
  LocationPattern(Kind kind, std::vector<std::string> components)
      : kind_(kind), components_(std::move(components)) {}

  /// Components ordered most-significant first: for IPs, as written; for
  /// symbolic names, reversed ("cs.lab.com" -> {com, lab, cs}).  In this
  /// canonical order wildcards always form a suffix.
  Kind kind_;
  std::vector<std::string> components_;
};

/// The server's user/group directory (paper §3): groups are named sets of
/// users, need not be disjoint, and can be nested.  Membership edges form
/// a DAG (cycles are rejected).
///
/// One group may be designated *universal* (default "Public"): every
/// user, including anonymous, is implicitly a member.
class GroupStore {
 public:
  GroupStore() = default;

  /// Declares a user identity.  Optional — membership edges implicitly
  /// declare their endpoints — but useful for validation and listing.
  void AddUser(std::string_view name);

  /// Declares an (empty) group.
  void AddGroup(std::string_view name);

  /// Adds `member` (a user or a group) to `group`.  Fails if the edge
  /// would create a membership cycle.
  Status AddMembership(std::string_view member, std::string_view group);

  /// Name of the group that implicitly contains every user ("" disables).
  void set_universal_group(std::string name) {
    universal_group_ = std::move(name);
  }
  const std::string& universal_group() const { return universal_group_; }

  /// True when `member` equals `ancestor` or is transitively a member of
  /// it (the UG component of the paper's ASH order).
  bool IsMemberOrSelf(std::string_view member,
                      std::string_view ancestor) const;

  /// All groups `member` transitively belongs to (universal group
  /// included when set), not including `member` itself.
  std::vector<std::string> GroupsOf(std::string_view member) const;

  /// Direct membership edges (member -> parent groups), for
  /// serialization and inspection.
  const std::map<std::string, std::set<std::string>>& memberships() const {
    return parents_;
  }

  bool HasUser(std::string_view name) const {
    return users_.count(std::string(name)) > 0;
  }
  bool HasGroup(std::string_view name) const {
    return groups_.count(std::string(name)) > 0 ||
           name == universal_group_;
  }

 private:
  std::set<std::string> users_;
  std::set<std::string> groups_;
  /// member -> set of direct parent groups.
  std::map<std::string, std::set<std::string>> parents_;
  std::string universal_group_ = "Public";
};

/// An authorization subject: the triple (user-or-group, IP pattern,
/// symbolic pattern) of Definition 1.
struct Subject {
  std::string ug;          ///< user or group identifier
  LocationPattern ip = LocationPattern::Any(LocationPattern::Kind::kIp);
  LocationPattern sym =
      LocationPattern::Any(LocationPattern::Kind::kSymbolic);

  /// Builds a subject, parsing both patterns ("*" for either means any).
  static Result<Subject> Make(std::string_view ug, std::string_view ip,
                              std::string_view sym);

  std::string ToString() const;

  friend bool operator==(const Subject& a, const Subject& b) {
    return a.ug == b.ug && a.ip == b.ip && a.sym == b.sym;
  }
};

/// The ASH partial order (Definition 1): `a ≤ b` iff a.ug is b.ug or a
/// member of it, a.ip ≤ip b.ip, and a.sym ≤sn b.sym.
bool SubjectLessEq(const Subject& a, const Subject& b,
                   const GroupStore& groups);

/// Strictly more specific: a ≤ b and a != b.
bool SubjectLess(const Subject& a, const Subject& b,
                 const GroupStore& groups);

/// A concrete access requester: authenticated user identity plus the
/// connection's numeric and symbolic addresses — a minimal element of the
/// ASH hierarchy.
struct Requester {
  std::string user;  ///< authenticated identity ("anonymous" when none)
  std::string ip;    ///< e.g. "130.100.50.8"
  std::string sym;   ///< e.g. "infosys.bld1.it"
  /// Request time, seconds since the epoch — evaluated against
  /// authorization validity windows (0 satisfies permanent
  /// authorizations, which are the default).
  int64_t time = 0;

  std::string ToString() const;
};

/// True when authorizations for `subject` apply to `rq`: the user matches
/// (identity, transitive group membership, or the universal group) and
/// both location patterns match the connection addresses.
bool RequesterMatches(const Requester& rq, const Subject& subject,
                      const GroupStore& groups);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_SUBJECT_H_
