#ifndef XMLSEC_AUTHZ_LINT_H_
#define XMLSEC_AUTHZ_LINT_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/subject.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace authz {

enum class LintSeverity { kWarning, kError };

/// One policy-lint finding.
struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  /// Stable machine-readable code, e.g. "dead-target".
  std::string code;
  std::string message;
  /// Index of the authorization in the concatenated (instance, then
  /// schema) input sequence; -1 for findings about the set as a whole.
  int auth_index = -1;
};

/// Static policy checks (a policy author's compile step):
///
///   * `bad-path` (error) — the XPath object does not compile;
///   * `dead-target` (warning) — the path selects nothing on the given
///     document (skipped for paths using requester variables, whose
///     selection is per-request);
///   * `unknown-subject` (warning) — the subject's user/group is not
///     declared in the GroupStore (and is not the universal group);
///   * `weak-schema` (error) — a weak authorization in the schema set;
///   * `empty-window` (error) — valid_from > valid_until;
///   * `unsat-object` (warning) — the object path cannot select a node
///     of any document valid against the supplied DTD (only when `dtd`
///     is given; delegates to the `analysis::PathAnalyzer` abstract
///     interpreter, so it is a proof, not a heuristic);
///   * `duplicate` (warning) — two authorizations that agree on
///     subject, object, action, type, and sign, with overlapping
///     validity windows (the later one is redundant while both apply);
///   * `contradiction` (warning) — same, but with opposite signs
///     (resolved by the conflict policy at runtime, but usually a
///     mistake).  Entries whose windows are disjoint are *not* flagged:
///     alternating signs over time is a legitimate pattern;
///   * `shadowed-subject` (warning) — an authorization that can never
///     win because an identical-object, identical-type authorization
///     with a strictly more specific subject always overrides it is NOT
///     reported (the more specific one may not apply to every requester)
///     — but the exact-equal-subject case is covered by `duplicate` /
///     `contradiction`.
///
/// `doc` may be null: document-dependent checks are skipped.  `dtd` may
/// be null: schema-dependent checks (`unsat-object`) are skipped.  The
/// pairwise duplicate/contradiction scan buckets authorizations by
/// (level, subject, object, action, type), so its cost is linear in the
/// policy size plus the number of actual collisions.
std::vector<LintFinding> LintPolicy(
    std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const GroupStore& groups,
    const xml::Document* doc, const xml::Dtd* dtd = nullptr);

/// Renders findings one per line ("error[bad-path]: ...").
std::string LintReport(const std::vector<LintFinding>& findings);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_LINT_H_
