#include "authz/subject.h"

#include <algorithm>
#include <deque>

#include "common/str_util.h"

namespace xmlsec {
namespace authz {

namespace {

bool IsValidIpOctet(std::string_view s) {
  if (s.empty() || s.size() > 3) return false;
  int value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  return value <= 255;
}

bool IsValidHostLabel(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Checks that wildcards form a suffix of `components` (canonical
/// most-significant-first order) and are not interleaved.
bool WildcardsFormSuffix(const std::vector<std::string>& components) {
  bool seen_wildcard = false;
  for (const std::string& c : components) {
    if (c == "*") {
      seen_wildcard = true;
    } else if (seen_wildcard) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<LocationPattern> LocationPattern::ParseIp(std::string_view text) {
  if (text == "*") return Any(Kind::kIp);
  std::vector<std::string> parts = SplitString(text, '.');
  if (parts.empty() || parts.size() > 4) {
    return Status::InvalidArgument("malformed IP pattern '" +
                                   std::string(text) + "'");
  }
  for (const std::string& part : parts) {
    if (part == "*") continue;
    if (!IsValidIpOctet(part)) {
      return Status::InvalidArgument("malformed IP pattern component '" +
                                     part + "' in '" + std::string(text) +
                                     "'");
    }
  }
  // "151.100.*" abbreviates "151.100.*.*".
  while (parts.size() < 4) {
    if (parts.back() != "*") {
      return Status::InvalidArgument("IP pattern '" + std::string(text) +
                                     "' has fewer than 4 components");
    }
    parts.push_back("*");
  }
  if (!WildcardsFormSuffix(parts)) {
    return Status::InvalidArgument(
        "wildcards in IP pattern '" + std::string(text) +
        "' must be contiguous right-most components");
  }
  return LocationPattern(Kind::kIp, std::move(parts));
}

Result<LocationPattern> LocationPattern::ParseSymbolic(std::string_view text) {
  if (text == "*") return Any(Kind::kSymbolic);
  std::vector<std::string> parts = SplitString(text, '.');
  if (parts.empty()) {
    return Status::InvalidArgument("empty symbolic pattern");
  }
  for (const std::string& part : parts) {
    if (part == "*") continue;
    if (!IsValidHostLabel(part)) {
      return Status::InvalidArgument(
          "malformed symbolic pattern component '" + part + "' in '" +
          std::string(text) + "'");
    }
  }
  // Canonical order: most significant first = reversed label order.
  std::reverse(parts.begin(), parts.end());
  if (!WildcardsFormSuffix(parts)) {
    return Status::InvalidArgument(
        "wildcards in symbolic pattern '" + std::string(text) +
        "' must be contiguous left-most components");
  }
  return LocationPattern(Kind::kSymbolic, std::move(parts));
}

LocationPattern LocationPattern::Any(Kind kind) {
  return LocationPattern(kind, {"*"});
}

bool LocationPattern::Matches(std::string_view address) const {
  if (components_.size() == 1 && components_[0] == "*") return true;
  std::vector<std::string> parts = SplitString(address, '.');
  if (kind_ == Kind::kSymbolic) std::reverse(parts.begin(), parts.end());
  if (kind_ == Kind::kIp && parts.size() != 4) return false;
  if (kind_ == Kind::kSymbolic && parts.size() < 1) return false;
  // The pattern may be shorter than a symbolic address ("*.lab.com" is
  // {com,lab,*} and must match {com,lab,host1,sub} — the trailing '*'
  // absorbs the remainder).  For IPs both sides have 4 components.
  size_t i = 0;
  for (; i < components_.size(); ++i) {
    if (components_[i] == "*") return true;  // Wildcard suffix absorbs rest.
    if (i >= parts.size() || components_[i] != parts[i]) return false;
  }
  return i == parts.size();
}

bool LocationPattern::LessEq(const LocationPattern& other) const {
  if (kind_ != other.kind_) return false;
  if (other.components_.size() == 1 && other.components_[0] == "*") {
    return true;
  }
  size_t i = 0;
  for (; i < other.components_.size(); ++i) {
    const std::string& oc = other.components_[i];
    if (oc == "*") return true;  // Suffix of wildcards in `other`.
    if (i >= components_.size() || components_[i] != oc) return false;
  }
  // `other` is fully concrete up to its length; `this` must not extend
  // beyond it with concrete components unless other ended in wildcard
  // (handled above).
  return i == components_.size();
}

bool LocationPattern::IsConcrete() const {
  for (const std::string& c : components_) {
    if (c == "*") return false;
  }
  return true;
}

std::string LocationPattern::ToString() const {
  std::vector<std::string> parts = components_;
  if (kind_ == Kind::kSymbolic) std::reverse(parts.begin(), parts.end());
  return JoinStrings(parts, ".");
}

void GroupStore::AddUser(std::string_view name) {
  users_.insert(std::string(name));
}

void GroupStore::AddGroup(std::string_view name) {
  groups_.insert(std::string(name));
}

Status GroupStore::AddMembership(std::string_view member,
                                 std::string_view group) {
  if (member == group) {
    return Status::InvalidArgument("membership of '" + std::string(member) +
                                   "' in itself");
  }
  // Reject cycles: `group` must not already be (transitively) a member of
  // `member`.
  if (IsMemberOrSelf(group, member)) {
    return Status::InvalidArgument(
        "membership edge " + std::string(member) + " -> " +
        std::string(group) + " would create a cycle");
  }
  groups_.insert(std::string(group));
  parents_[std::string(member)].insert(std::string(group));
  return Status::OK();
}

bool GroupStore::IsMemberOrSelf(std::string_view member,
                                std::string_view ancestor) const {
  if (member == ancestor) return true;
  if (!universal_group_.empty() && ancestor == universal_group_) return true;
  // BFS over parent edges.
  std::deque<std::string> work;
  std::set<std::string> visited;
  work.emplace_back(member);
  while (!work.empty()) {
    std::string current = std::move(work.front());
    work.pop_front();
    auto it = parents_.find(current);
    if (it == parents_.end()) continue;
    for (const std::string& parent : it->second) {
      if (parent == ancestor) return true;
      if (visited.insert(parent).second) work.push_back(parent);
    }
  }
  return false;
}

std::vector<std::string> GroupStore::GroupsOf(std::string_view member) const {
  std::set<std::string> found;
  std::deque<std::string> work;
  work.emplace_back(member);
  while (!work.empty()) {
    std::string current = std::move(work.front());
    work.pop_front();
    auto it = parents_.find(current);
    if (it == parents_.end()) continue;
    for (const std::string& parent : it->second) {
      if (found.insert(parent).second) work.push_back(parent);
    }
  }
  if (!universal_group_.empty()) found.insert(universal_group_);
  found.erase(std::string(member));
  return std::vector<std::string>(found.begin(), found.end());
}

Result<Subject> Subject::Make(std::string_view ug, std::string_view ip,
                              std::string_view sym) {
  XMLSEC_ASSIGN_OR_RETURN(LocationPattern ip_pattern,
                          LocationPattern::ParseIp(ip));
  XMLSEC_ASSIGN_OR_RETURN(LocationPattern sym_pattern,
                          LocationPattern::ParseSymbolic(sym));
  Subject subject;
  subject.ug = std::string(ug);
  subject.ip = std::move(ip_pattern);
  subject.sym = std::move(sym_pattern);
  return subject;
}

std::string Subject::ToString() const {
  return "<" + ug + ", " + ip.ToString() + ", " + sym.ToString() + ">";
}

bool SubjectLessEq(const Subject& a, const Subject& b,
                   const GroupStore& groups) {
  return groups.IsMemberOrSelf(a.ug, b.ug) && a.ip.LessEq(b.ip) &&
         a.sym.LessEq(b.sym);
}

bool SubjectLess(const Subject& a, const Subject& b,
                 const GroupStore& groups) {
  return SubjectLessEq(a, b, groups) && !(a == b);
}

std::string Requester::ToString() const {
  return "(" + user + ", " + ip + ", " + sym + ")";
}

bool RequesterMatches(const Requester& rq, const Subject& subject,
                      const GroupStore& groups) {
  return groups.IsMemberOrSelf(rq.user, subject.ug) &&
         subject.ip.Matches(rq.ip) && subject.sym.Matches(rq.sym);
}

}  // namespace authz
}  // namespace xmlsec
