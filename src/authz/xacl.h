#ifndef XMLSEC_AUTHZ_XACL_H_
#define XMLSEC_AUTHZ_XACL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"

namespace xmlsec {
namespace authz {

/// The XACL document type: the paper's XML Access Control List (§7),
/// itself an XML document — this library eats its own dog food by
/// parsing and validating XACLs with its XML substrate.
///
/// ```xml
/// <?xml version="1.0"?>
/// <xacl base-uri="http://www.lab.com/">
///   <authorization subject="Foreign" ip="*" sym="*"
///                  object="laboratory.xml"
///                  path='/laboratory//paper[./@category="private"]'
///                  action="read" sign="-" type="R"/>
/// </xacl>
/// ```
///
/// `object` may also carry the combined `URI:PATH` notation; `path`, when
/// present, wins.  A relative `object` URI is resolved against
/// `base-uri`.
struct XaclFile {
  std::string base_uri;
  std::vector<Authorization> authorizations;
};

/// The DTD all XACL documents must satisfy.
std::string_view XaclDtd();

/// Parses and validates an XACL document.
Result<XaclFile> ParseXacl(std::string_view text);

/// Renders an XACL document (inverse of `ParseXacl` up to formatting).
std::string SerializeXacl(const XaclFile& xacl);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_XACL_H_
