#include "authz/update.h"

#include <unordered_set>
#include <utility>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::Attr;
using xml::Document;
using xml::Element;
using xml::Node;

/// True when `node` and (for elements) its whole subtree, attributes
/// included, carry a positive write label.
bool SubtreeWritable(const Node* node, const LabelMap& labels) {
  bool ok = true;
  xml::ForEachNode(node, [&](const Node* n) {
    if (labels.FinalSign(n) != TriSign::kPlus) ok = false;
  });
  return ok;
}

Status Denied(const UpdateOp& op, const char* what) {
  return Status::PermissionDenied(
      std::string("write denied: ") + what + " (target '" + op.target +
      "')");
}

/// Parses an insert fragment in the HOST document's DTD context: the
/// wrapper document carries the host DTD as its internal subset, so
/// entity references defined by the host schema resolve exactly as they
/// would inside the document itself — a bare wrapper would silently
/// drop them (and with them the content being write-checked).
Result<std::unique_ptr<Document>> ParseFragment(const Document& host,
                                                const std::string& fragment) {
  std::string text;
  if (host.dtd() != nullptr && !host.dtd()->empty()) {
    text += "<!DOCTYPE fragment [\n";
    text += xml::SerializeDtd(*host.dtd());
    text += "]>";
  }
  text += "<fragment>" + fragment + "</fragment>";
  return xml::ParseDocument(text);
}

/// Materializes DTD attribute defaults on `el` and its descendant
/// elements (the same rule `xml::ValidateDocument` applies at
/// registration time), so an inserted subtree is write-checked with
/// every attribute it will actually carry — defaulted ones included.
void ApplyAttributeDefaults(Element* el, const xml::Dtd& dtd) {
  const std::vector<xml::AttrDecl>* attlist = dtd.FindAttlist(el->tag());
  if (attlist != nullptr) {
    for (const xml::AttrDecl& decl : *attlist) {
      if ((decl.default_kind == xml::AttrDefaultKind::kFixed ||
           decl.default_kind == xml::AttrDefaultKind::kDefault) &&
          el->FindAttribute(decl.name) == nullptr) {
        Attr* added = el->SetAttribute(decl.name, decl.default_value);
        added->set_defaulted(true);
      }
    }
  }
  for (size_t i = 0; i < el->child_count(); ++i) {
    if (Element* child = el->child(i)->AsElement()) {
      ApplyAttributeDefaults(child, dtd);
    }
  }
}

}  // namespace

Result<UpdateOutcome> UpdateProcessor::Apply(
    const Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    std::span<const UpdateOp> ops, bool validate_result,
    const ExplicitSignEngine* engine) const {
  // Work on a clone; the original is never touched.
  std::unique_ptr<Node> cloned = doc.Clone(/*deep=*/true);
  auto work = std::unique_ptr<Document>(
      static_cast<Document*>(cloned.release()));
  work->Reindex();

  TreeLabeler labeler(groups_, policy_);
  UpdateOutcome outcome;
  xpath::VariableBindings vars;
  vars.emplace("user", xpath::Value(rq.user));
  vars.emplace("ip", xpath::Value(rq.ip));
  vars.emplace("sym", xpath::Value(rq.sym));
  vars.emplace("time", xpath::Value(static_cast<double>(rq.time)));

  // Whole-document labeling of the current clone state; prefers the
  // compiled engine, falling back to the XPath labeler on engine
  // failure or schema mismatch (fail-safe, never fail-open).
  auto full_label = [&]() -> Result<LabelMap> {
    work->Reindex();
    if (engine != nullptr) {
      bool mismatch = false;
      Result<ExplicitSigns> signs = engine->ComputeSigns(
          *work, rq, *groups_, policy_, /*stats=*/nullptr, &mismatch);
      if (signs.ok() && !mismatch) return PropagateSigns(*work, *signs);
    }
    return labeler.Label(*work, instance_auths, schema_auths, rq);
  };

  XMLSEC_ASSIGN_OR_RETURN(LabelMap labels, full_label());

  // Incremental re-labeling applies when the engine proves EVERY
  // authorization statically decidable: explicit signs then depend only
  // on root-to-node tag words, which a mutation cannot change outside
  // the mutated region, and propagation is strictly parent→child — so
  // signs outside the region are provably unchanged (DESIGN.md, "The
  // write path").  Anything else falls back to a whole-document
  // re-label, counted per op.  A schema mismatch disables the
  // incremental path for the rest of the batch (it would only mismatch
  // again).
  bool incremental = engine != nullptr && engine->fully_decidable();

  // On the incremental path the Reindex after a pure deletion is
  // deferred: surviving doc_orders go stale but stay strictly
  // increasing in document order (deletion preserves relative order),
  // which is the only property the XPath evaluator and the label map
  // rely on between mutations.  `orders_compact` records whether the
  // dense 0..n-1 numbering — required by the contiguous-gap shortcut
  // below — currently holds.
  bool orders_compact = true;

  // Re-labels the clone after a mutation whose created nodes are the
  // subtrees rooted at `created_roots` (empty for pure deletions and
  // in-place value rewrites).  Incremental path: signs of surviving
  // nodes are provably unchanged, so only the created regions are run
  // through the propagation rules, seeded from each root's (unchanged)
  // parent label, with explicit rows from the engine's lazy resolver.
  auto relabel = [&](const std::vector<const Node*>& created_roots)
      -> Status {
    if (incremental) {
      if (created_roots.empty()) {
        // Nothing was created: a fully decidable explicit sign depends
        // only on the root-to-node tag word plus request constants
        // (never on values), so a value rewrite or deletion leaves
        // every surviving label — and therefore the whole map —
        // untouched.
        ++outcome.incremental_relabels;
        return Status::OK();
      }
      if (orders_compact) {
        // The created subtrees occupy one contiguous doc-order block:
        // consecutive siblings plus their descendants and attributes
        // are visited back-to-back by Reindex, and survivors before
        // the block keep their old numbers.  Shifting the surviving
        // labels around that gap is equivalent to re-stashing them
        // node by node, at memmove cost.
        const size_t old_count = labels.size();
        work->Reindex();
        const size_t new_count = static_cast<size_t>(work->node_count());
        labels.InsertGap(
            static_cast<size_t>(created_roots.front()->doc_order()),
            new_count - old_count);
      } else {
        // Stale numbering (a deferred deletion ran earlier): stash
        // every surviving node's label by pointer while the old
        // doc_orders are still on the nodes, Reindex, and copy the
        // stash into a map sized for the new numbering.
        std::unordered_set<const Node*> created;
        for (const Node* root : created_roots) {
          xml::ForEachNode(root,
                           [&](const Node* n) { created.insert(n); });
        }
        std::vector<std::pair<const Node*, NodeLabel>> stash;
        stash.reserve(labels.size());
        xml::ForEachNode(
            static_cast<const Node*>(work.get()), [&](const Node* n) {
              // Created nodes carry no valid doc_order yet (and no
              // label).
              if (created.find(n) == created.end()) {
                stash.emplace_back(n, labels.At(n));
              }
            });
        work->Reindex();
        LabelMap next(static_cast<size_t>(work->node_count()));
        for (const auto& [n, lab] : stash) next.At(n) = lab;
        labels = std::move(next);
      }
      orders_compact = true;
      std::unique_ptr<NodeSignResolver> resolver =
          engine->NewNodeResolver(*work, rq, *groups_, policy_);
      bool ok = resolver != nullptr;
      if (ok) {
        ExplicitRowFn rows = [&resolver](const Node* n) {
          return resolver->RowFor(*n);
        };
        for (const Node* root : created_roots) {
          RelabelSubtree(root, labels.At(root->parent()), rows, &labels);
        }
        // The latch is sticky: any mismatch poisons every row handed
        // out above, so the whole map must be discarded.
        ok = !resolver->schema_mismatch();
      }
      if (ok) {
        ++outcome.incremental_relabels;
        return Status::OK();
      }
      incremental = false;
    }
    XMLSEC_ASSIGN_OR_RETURN(labels, full_label());
    orders_compact = true;
    ++outcome.full_relabels;
    return Status::OK();
  };

  // Post-state check: every node the op created (or rewrote) must carry
  // a strict '+' write label under the post-mutation labeling — 'ε'
  // denies.  This is what closes the fail-open gaps: inserted subtrees
  // and not-yet-existing attributes have no pre-state label to check,
  // and under value-dependent policies a write can even flip signs on
  // the nodes it touches.
  auto post_check = [&](const std::vector<const Node*>& created_roots,
                        const UpdateOp& op, const char* what) -> Status {
    for (const Node* root : created_roots) {
      if (!SubtreeWritable(root, labels)) return Denied(op, what);
    }
    return Status::OK();
  };

  for (const UpdateOp& op : ops) {
    // Invariant at the top of each iteration: `work` is Reindex()ed and
    // `labels` is its current write labeling (earlier operations may
    // have changed which nodes exist and which authorizations select
    // them).
    XMLSEC_ASSIGN_OR_RETURN(
        xpath::NodeSet selected,
        xpath::SelectXPath(op.target, work->root(), &vars));
    if (selected.size() != 1) {
      return Status::InvalidArgument(
          "update target '" + op.target + "' selects " +
          std::to_string(selected.size()) + " node(s), expected exactly 1");
    }
    // The evaluator hands out const pointers; we own the tree.
    Node* node = const_cast<Node*>(selected.front());
    Element* element = node->AsElement();
    if (element == nullptr) {
      return Status::InvalidArgument("update target '" + op.target +
                                     "' is not an element");
    }

    switch (op.kind) {
      case UpdateOpKind::kInsertChild: {
        if (labels.FinalSign(element) != TriSign::kPlus) {
          return Denied(op, "no write permission on the target element");
        }
        XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Document> fragment,
                                ParseFragment(*work, op.fragment));
        const Node* anchor = nullptr;
        if (!op.before.empty()) {
          XMLSEC_ASSIGN_OR_RETURN(
              xpath::NodeSet anchors,
              xpath::SelectXPath(op.before, element, &vars));
          if (anchors.size() != 1 || anchors.front()->parent() != element) {
            return Status::InvalidArgument(
                "insert anchor '" + op.before +
                "' must select exactly one child of the target");
          }
          anchor = anchors.front();
        }
        std::vector<const Node*> created;
        Element* holder = fragment->root();
        while (!holder->children().empty()) {
          std::unique_ptr<Node> child =
              holder->RemoveChild(holder->child(0));
          if (Element* child_el = child->AsElement()) {
            if (work->dtd() != nullptr) {
              ApplyAttributeDefaults(child_el, *work->dtd());
            }
          }
          created.push_back(child.get());
          element->InsertBefore(std::move(child), anchor);
        }
        XMLSEC_RETURN_IF_ERROR(relabel(created));
        XMLSEC_RETURN_IF_ERROR(post_check(
            created, op, "inserted content is not writable by requester"));
        break;
      }
      case UpdateOpKind::kDeleteNode: {
        if (!SubtreeWritable(element, labels)) {
          return Denied(op,
                        "subtree contains nodes without write permission");
        }
        Node* parent = element->parent();
        // The root element's parent is the document node.
        if (parent == nullptr || !parent->IsElement()) {
          return Status::InvalidArgument("cannot delete the document root");
        }
        parent->RemoveChild(element);
        orders_compact = false;
        XMLSEC_RETURN_IF_ERROR(relabel({}));
        break;
      }
      case UpdateOpKind::kSetAttribute: {
        Attr* existing = element->FindAttribute(op.name);
        if (existing != nullptr) {
          if (labels.FinalSign(existing) != TriSign::kPlus) {
            return Denied(op, "no write permission on the attribute");
          }
          existing->set_value(op.value);
          XMLSEC_RETURN_IF_ERROR(relabel({}));
          XMLSEC_RETURN_IF_ERROR(post_check(
              {existing}, op, "no write permission on the attribute"));
        } else {
          // A NEW attribute: '+' on the element lets the requester
          // extend it, but the created attribute must ALSO be writable
          // under its own (instance- and schema-level) attribute
          // authorizations in the post state — otherwise an
          // attribute-scoped denial could be bypassed by
          // delete-then-recreate.
          if (labels.FinalSign(element) != TriSign::kPlus) {
            return Denied(op, "no write permission on the target element");
          }
          Attr* added = element->SetAttribute(op.name, op.value);
          XMLSEC_RETURN_IF_ERROR(relabel({added}));
          XMLSEC_RETURN_IF_ERROR(post_check(
              {added}, op, "no write permission on the attribute"));
        }
        break;
      }
      case UpdateOpKind::kRemoveAttribute: {
        const Attr* existing = element->FindAttribute(op.name);
        if (existing == nullptr) {
          return Status::NotFound("attribute '" + op.name +
                                  "' not present on update target");
        }
        if (labels.FinalSign(existing) != TriSign::kPlus) {
          return Denied(op, "no write permission on the attribute");
        }
        element->RemoveAttribute(op.name);
        orders_compact = false;
        XMLSEC_RETURN_IF_ERROR(relabel({}));
        break;
      }
      case UpdateOpKind::kSetText: {
        if (labels.FinalSign(element) != TriSign::kPlus) {
          return Denied(op, "no write permission on the target element");
        }
        // Replacing content destroys existing children: all must be
        // writable.
        for (const auto& child : element->children()) {
          if (!SubtreeWritable(child.get(), labels)) {
            return Denied(op,
                          "existing content is not writable by requester");
          }
        }
        if (!element->children().empty()) orders_compact = false;
        while (!element->children().empty()) {
          element->RemoveChildAt(element->child_count() - 1);
        }
        element->AppendText(op.value);
        const Node* text = element->child(element->child_count() - 1);
        XMLSEC_RETURN_IF_ERROR(relabel({text}));
        XMLSEC_RETURN_IF_ERROR(post_check(
            {text}, op, "replacement text is not writable by requester"));
        break;
      }
    }
    ++outcome.ops_applied;
  }

  work->Reindex();
  if (validate_result && work->dtd() != nullptr && !work->dtd()->empty()) {
    XMLSEC_RETURN_IF_ERROR(xml::ValidateDocument(work.get()));
    work->Reindex();
  }
  outcome.document = std::move(work);
  return outcome;
}

}  // namespace authz
}  // namespace xmlsec
