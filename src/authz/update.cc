#include "authz/update.h"

#include "authz/labeling.h"
#include "xml/parser.h"
#include "xml/validator.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::Document;
using xml::Element;
using xml::Node;

/// True when `node` and (for elements) its whole subtree, attributes
/// included, carry a positive write label.
bool SubtreeWritable(const Node* node, const LabelMap& labels) {
  bool ok = true;
  xml::ForEachNode(node, [&](const Node* n) {
    if (labels.FinalSign(n) != TriSign::kPlus) ok = false;
  });
  return ok;
}

Status Denied(const UpdateOp& op, const char* what) {
  return Status::PermissionDenied(
      std::string("write denied: ") + what + " (target '" + op.target +
      "')");
}

}  // namespace

Result<UpdateOutcome> UpdateProcessor::Apply(
    const Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    std::span<const UpdateOp> ops, bool validate_result) const {
  // Work on a clone; the original is never touched.
  std::unique_ptr<Node> cloned = doc.Clone(/*deep=*/true);
  auto work = std::unique_ptr<Document>(
      static_cast<Document*>(cloned.release()));

  TreeLabeler labeler(groups_, policy_);
  UpdateOutcome outcome;
  xpath::VariableBindings vars;
  vars.emplace("user", xpath::Value(rq.user));
  vars.emplace("ip", xpath::Value(rq.ip));
  vars.emplace("sym", xpath::Value(rq.sym));
  vars.emplace("time", xpath::Value(static_cast<double>(rq.time)));

  for (const UpdateOp& op : ops) {
    // (Re)label the current state: earlier operations may have changed
    // which nodes exist and which authorizations select them.
    work->Reindex();
    XMLSEC_ASSIGN_OR_RETURN(
        LabelMap labels,
        labeler.Label(*work, instance_auths, schema_auths, rq));

    XMLSEC_ASSIGN_OR_RETURN(
        xpath::NodeSet selected,
        xpath::SelectXPath(op.target, work->root(), &vars));
    if (selected.size() != 1) {
      return Status::InvalidArgument(
          "update target '" + op.target + "' selects " +
          std::to_string(selected.size()) + " node(s), expected exactly 1");
    }
    // The evaluator hands out const pointers; we own the tree.
    Node* node = const_cast<Node*>(selected.front());
    Element* element = node->AsElement();
    if (element == nullptr) {
      return Status::InvalidArgument("update target '" + op.target +
                                     "' is not an element");
    }

    switch (op.kind) {
      case UpdateOpKind::kInsertChild: {
        if (labels.FinalSign(element) != TriSign::kPlus) {
          return Denied(op, "no write permission on the target element");
        }
        // Parse the fragment through a tiny wrapper document so entity
        // and well-formedness rules apply.
        XMLSEC_ASSIGN_OR_RETURN(
            std::unique_ptr<Document> fragment,
            xml::ParseDocument("<fragment>" + op.fragment + "</fragment>"));
        const Node* anchor = nullptr;
        if (!op.before.empty()) {
          XMLSEC_ASSIGN_OR_RETURN(
              xpath::NodeSet anchors,
              xpath::SelectXPath(op.before, element, &vars));
          if (anchors.size() != 1 || anchors.front()->parent() != element) {
            return Status::InvalidArgument(
                "insert anchor '" + op.before +
                "' must select exactly one child of the target");
          }
          anchor = anchors.front();
        }
        Element* holder = fragment->root();
        while (!holder->children().empty()) {
          std::unique_ptr<Node> child =
              holder->RemoveChild(holder->child(0));
          element->InsertBefore(std::move(child), anchor);
        }
        break;
      }
      case UpdateOpKind::kDeleteNode: {
        if (!SubtreeWritable(element, labels)) {
          return Denied(op,
                        "subtree contains nodes without write permission");
        }
        Node* parent = element->parent();
        // The root element's parent is the document node.
        if (parent == nullptr || !parent->IsElement()) {
          return Status::InvalidArgument("cannot delete the document root");
        }
        parent->RemoveChild(element);
        break;
      }
      case UpdateOpKind::kSetAttribute: {
        const xml::Attr* existing = element->FindAttribute(op.name);
        const Node* guard = existing != nullptr
                                ? static_cast<const Node*>(existing)
                                : static_cast<const Node*>(element);
        if (labels.FinalSign(guard) != TriSign::kPlus) {
          return Denied(op, "no write permission on the attribute");
        }
        element->SetAttribute(op.name, op.value);
        break;
      }
      case UpdateOpKind::kRemoveAttribute: {
        const xml::Attr* existing = element->FindAttribute(op.name);
        if (existing == nullptr) {
          return Status::NotFound("attribute '" + op.name +
                                  "' not present on update target");
        }
        if (labels.FinalSign(existing) != TriSign::kPlus) {
          return Denied(op, "no write permission on the attribute");
        }
        element->RemoveAttribute(op.name);
        break;
      }
      case UpdateOpKind::kSetText: {
        if (labels.FinalSign(element) != TriSign::kPlus) {
          return Denied(op, "no write permission on the target element");
        }
        // Replacing content destroys existing children: all must be
        // writable.
        for (const auto& child : element->children()) {
          if (!SubtreeWritable(child.get(), labels)) {
            return Denied(op,
                          "existing content is not writable by requester");
          }
        }
        while (!element->children().empty()) {
          element->RemoveChildAt(element->child_count() - 1);
        }
        element->AppendText(op.value);
        break;
      }
    }
    ++outcome.ops_applied;
  }

  work->Reindex();
  if (validate_result && work->dtd() != nullptr && !work->dtd()->empty()) {
    XMLSEC_RETURN_IF_ERROR(xml::ValidateDocument(work.get()));
    work->Reindex();
  }
  outcome.document = std::move(work);
  return outcome;
}

}  // namespace authz
}  // namespace xmlsec
