#include "authz/labeling.h"

#include <array>
#include <unordered_map>

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::Attr;
using xml::Document;
using xml::Element;
using xml::Node;

char SignChar(TriSign s) {
  switch (s) {
    case TriSign::kEps:
      return 'e';
    case TriSign::kPlus:
      return '+';
    case TriSign::kMinus:
      return '-';
  }
  return '?';
}

constexpr LabelSlot kL = LabelSlot::kL;
constexpr LabelSlot kR = LabelSlot::kR;
constexpr LabelSlot kLD = LabelSlot::kLD;
constexpr LabelSlot kRD = LabelSlot::kRD;
constexpr LabelSlot kLW = LabelSlot::kLW;
constexpr LabelSlot kRW = LabelSlot::kRW;

/// Bindings for `$user`, `$ip`, `$sym`, and `$time` inside authorization
/// path expressions — self-referential policies such as
/// `//record[@owner=$user]` need no per-user authorization entries.
xpath::VariableBindings RequesterBindings(const Requester& rq) {
  xpath::VariableBindings vars;
  vars.emplace("user", xpath::Value(rq.user));
  vars.emplace("ip", xpath::Value(rq.ip));
  vars.emplace("sym", xpath::Value(rq.sym));
  vars.emplace("time", xpath::Value(static_cast<double>(rq.time)));
  return vars;
}

/// Evaluates an authorization's target node-set.  An empty path targets
/// the root element; a node-set containing the document node is remapped
/// to the root element (authorizations on "the document" govern the root
/// with propagation per their type).
Result<xpath::NodeSet> TargetNodes(const Authorization& auth,
                                   const Document& doc,
                                   const xpath::VariableBindings& vars) {
  if (auth.object.path.empty()) {
    xpath::NodeSet set;
    set.push_back(doc.root());
    return set;
  }
  XMLSEC_ASSIGN_OR_RETURN(
      xpath::NodeSet set,
      xpath::SelectXPath(auth.object.path, doc.root(), &vars));
  for (const Node*& node : set) {
    if (node->type() == xml::NodeType::kDocument) node = doc.root();
  }
  xpath::SortDocumentOrder(&set);
  return set;
}

TriSign First2(TriSign a, TriSign b) {
  return a != TriSign::kEps ? a : b;
}

/// Pre-order propagation (paper Fig. 2, procedure `label`),
/// parameterized on the explicit-row source so the same rules serve the
/// whole-document pass (rows from a precomputed `ExplicitSigns`) and
/// the subtree-scoped incremental pass (rows from a lazy resolver).
/// `RowSource` is callable as `std::array<TriSign, 6>(const Node*)`
/// (by value or reference).
template <typename RowSource>
class Propagator {
 public:
  Propagator(const RowSource& rows, LabelMap* labels)
      : rows_(rows), labels_(labels) {}

  void LabelRoot(const Element* root) {
    NodeLabel& lab = Init(root);
    lab.final_sign =
        FirstDef({lab.l, lab.r, lab.ld, lab.rd, lab.lw, lab.rw});
    Descend(root, lab);
  }

  void LabelElement(const Element* el, const NodeLabel& parent) {
    NodeLabel& lab = Init(el);
    // Most specific object overrides: the node's own recursive signs (of
    // either strength) suppress the propagated pair.
    if (lab.r == TriSign::kEps && lab.rw == TriSign::kEps) {
      lab.r = parent.r;
      lab.rw = parent.rw;
    }
    // Schema-level recursive signs propagate independently.
    lab.rd = First2(lab.rd, parent.rd);
    lab.final_sign =
        FirstDef({lab.l, lab.r, lab.ld, lab.rd, lab.lw, lab.rw});
    Descend(el, lab);
  }

  void LabelAttribute(const Attr* attr, const NodeLabel& parent) {
    NodeLabel& lab = Init(attr);
    // An element's Local authorizations cover its direct attributes; its
    // merged recursive signs cover them too, at lower priority.  The
    // priority sequence mirrors the element rule — instance, then
    // schema, then weak; explicit-on-attribute before propagated.
    TriSign inst = First2(parent.l_explicit, parent.r);
    TriSign schema = First2(parent.ld_explicit, parent.rd);
    TriSign weak = First2(parent.lw_explicit, parent.rw);
    lab.final_sign = FirstDef({lab.l, inst, lab.ld, schema, lab.lw, weak});
  }

 private:
  /// Copies the node's initial tuple into the label map and records the
  /// explicit values.
  NodeLabel& Init(const Node* node) {
    const std::array<TriSign, 6> slots = rows_(node);
    NodeLabel& lab = labels_->At(node);
    lab.l = slots[static_cast<size_t>(kL)];
    lab.r = slots[static_cast<size_t>(kR)];
    lab.ld = slots[static_cast<size_t>(kLD)];
    lab.rd = slots[static_cast<size_t>(kRD)];
    lab.lw = slots[static_cast<size_t>(kLW)];
    lab.rw = slots[static_cast<size_t>(kRW)];
    lab.l_explicit = lab.l;
    lab.ld_explicit = lab.ld;
    lab.lw_explicit = lab.lw;
    return lab;
  }

  void Descend(const Element* el, const NodeLabel& lab) {
    for (const auto& attr : el->attributes()) {
      LabelAttribute(attr.get(), lab);
    }
    for (const auto& child : el->children()) {
      if (child->IsElement()) {
        LabelElement(static_cast<const Element*>(child.get()), lab);
      } else {
        // Text / CDATA / comment / PI nodes are the "values" of the
        // paper's tree: visible iff their element is.
        labels_->At(child.get()).final_sign = lab.final_sign;
      }
    }
  }

  const RowSource& rows_;
  LabelMap* labels_;
};

/// Row source over a precomputed `ExplicitSigns` (the whole-document
/// pass).
struct ExplicitSignsRows {
  const ExplicitSigns& initial;
  std::array<TriSign, 6> operator()(const Node* node) const {
    return initial.Row(node);
  }
};

}  // namespace

LabelSlot SlotForTarget(const Authorization& auth, bool schema_level,
                        bool target_is_attribute) {
  bool recursive = IsRecursive(auth.type);
  if (target_is_attribute) recursive = false;  // R on attribute acts as L.
  if (schema_level) return recursive ? kRD : kLD;
  if (IsWeak(auth.type)) return recursive ? kRW : kLW;
  return recursive ? kR : kL;
}

TriSign ResolveSlotCandidates(const std::vector<const Authorization*>& candidates,
                              const GroupStore& groups, ConflictPolicy policy) {
  bool any_plus = false;
  bool any_minus = false;
  for (const Authorization* a : candidates) {
    bool overridden = false;
    for (const Authorization* b : candidates) {
      if (a != b && SubjectLess(b->subject, a->subject, groups)) {
        overridden = true;
        break;
      }
    }
    if (overridden) continue;
    if (a->sign == Sign::kPlus) {
      any_plus = true;
    } else {
      any_minus = true;
    }
  }
  if (!any_plus && !any_minus) return TriSign::kEps;
  switch (policy) {
    case ConflictPolicy::kDenialsTakePrecedence:
      return any_minus ? TriSign::kMinus : TriSign::kPlus;
    case ConflictPolicy::kPermissionsTakePrecedence:
      return any_plus ? TriSign::kPlus : TriSign::kMinus;
    case ConflictPolicy::kNothingTakesPrecedence:
      if (any_plus && any_minus) return TriSign::kEps;
      return any_plus ? TriSign::kPlus : TriSign::kMinus;
  }
  return TriSign::kEps;
}

Result<SlotCandidates> CollectSlotCandidates(
    const Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, LabelingStats* stats) {
  SlotCandidates out;
  out.touched.assign(static_cast<size_t>(doc.node_count()), 0);
  const xpath::VariableBindings bindings = RequesterBindings(rq);

  auto collect = [&](std::span<const Authorization> auths,
                     bool schema_level) -> Status {
    for (const Authorization& auth : auths) {
      if (static_cast<int>(auth.action) != policy.action) continue;
      if (!auth.AppliesAtTime(rq.time)) continue;
      if (!RequesterMatches(rq, auth.subject, groups)) continue;
      if (stats != nullptr) {
        (schema_level ? stats->applicable_schema_auths
                      : stats->applicable_instance_auths)++;
      }
      XMLSEC_ASSIGN_OR_RETURN(xpath::NodeSet targets,
                              TargetNodes(auth, doc, bindings));
      if (stats != nullptr) {
        stats->xpath_evaluations++;
        stats->target_nodes += static_cast<int64_t>(targets.size());
      }
      for (const Node* node : targets) {
        if (!node->IsElement() && !node->IsAttribute()) continue;
        LabelSlot slot = SlotForTarget(auth, schema_level,
                                       node->IsAttribute());
        out.slots[SlotCandidates::KeyOf(node->doc_order(), slot)].push_back(
            &auth);
        out.touched[static_cast<size_t>(node->doc_order())] = 1;
      }
    }
    return Status::OK();
  };

  XMLSEC_RETURN_IF_ERROR(collect(instance_auths, /*schema_level=*/false));
  XMLSEC_RETURN_IF_ERROR(collect(schema_auths, /*schema_level=*/true));
  return out;
}

Result<ExplicitSigns> ComputeExplicitSigns(
    const Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, LabelingStats* stats) {
  ExplicitSigns initial(static_cast<size_t>(doc.node_count()));
  XMLSEC_ASSIGN_OR_RETURN(
      SlotCandidates candidates,
      CollectSlotCandidates(doc, instance_auths, schema_auths, rq, groups,
                            policy, stats));
  for (const auto& [key, auths] : candidates.slots) {
    size_t node_index = key / 6;
    auto slot = static_cast<size_t>(key % 6);
    initial.MutableRow(node_index)[slot] =
        ResolveSlotCandidates(auths, groups, policy.conflict);
  }
  return initial;
}

LabelMap PropagateSigns(const Document& doc, const ExplicitSigns& initial) {
  LabelMap labels(static_cast<size_t>(doc.node_count()));
  ExplicitSignsRows rows{initial};
  Propagator<ExplicitSignsRows> propagator(rows, &labels);
  propagator.LabelRoot(doc.root());
  return labels;
}

void RelabelSubtree(const xml::Node* node, const NodeLabel& parent_label,
                    const ExplicitRowFn& rows, LabelMap* labels) {
  Propagator<ExplicitRowFn> propagator(rows, labels);
  if (const Element* el = node->AsElement()) {
    propagator.LabelElement(el, parent_label);
  } else if (const Attr* attr = node->AsAttr()) {
    propagator.LabelAttribute(attr, parent_label);
  } else {
    labels->At(node).final_sign = parent_label.final_sign;
  }
}

char TriSignToChar(TriSign s) { return SignChar(s); }

TriSign FirstDef(std::initializer_list<TriSign> signs) {
  for (TriSign s : signs) {
    if (s != TriSign::kEps) return s;
  }
  return TriSign::kEps;
}

std::string NodeLabel::ToString() const {
  std::string out = "<";
  out += SignChar(l);
  out += SignChar(r);
  out += SignChar(ld);
  out += SignChar(rd);
  out += SignChar(lw);
  out += SignChar(rw);
  out += "|";
  out += SignChar(final_sign);
  out += ">";
  return out;
}

Result<LabelMap> TreeLabeler::Label(const Document& doc,
                                    std::span<const Authorization> instance_auths,
                                    std::span<const Authorization> schema_auths,
                                    const Requester& rq,
                                    LabelingStats* stats) const {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  XMLSEC_ASSIGN_OR_RETURN(
      ExplicitSigns initial,
      ComputeExplicitSigns(doc, instance_auths, schema_auths, rq, *groups_,
                           policy_, stats));
  LabelMap labels = PropagateSigns(doc, initial);
  if (stats != nullptr) {
    stats->labeled_nodes = doc.node_count();
  }
  return labels;
}

Result<LabelMap> LabelTreeNaive(const Document& doc,
                                std::span<const Authorization> instance_auths,
                                std::span<const Authorization> schema_auths,
                                const Requester& rq, const GroupStore& groups,
                                PolicyOptions policy) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  XMLSEC_ASSIGN_OR_RETURN(
      ExplicitSigns initial,
      ComputeExplicitSigns(doc, instance_auths, schema_auths, rq, groups,
                           policy, nullptr));
  LabelMap labels(static_cast<size_t>(doc.node_count()));

  // Per-element declarative semantics: walk the ancestor chain for each
  // recursive slot, independently per node.
  auto recursive_pair = [&](const Element* el, TriSign* r, TriSign* rw) {
    *r = TriSign::kEps;
    *rw = TriSign::kEps;
    for (const Node* m = el; m != nullptr && m->IsElement();
         m = m->parent()) {
      TriSign mr = initial.Get(m, kR);
      TriSign mrw = initial.Get(m, kRW);
      if (mr != TriSign::kEps || mrw != TriSign::kEps) {
        *r = mr;
        *rw = mrw;
        return;
      }
    }
  };
  auto recursive_schema = [&](const Element* el) {
    for (const Node* m = el; m != nullptr && m->IsElement();
         m = m->parent()) {
      TriSign mrd = initial.Get(m, kRD);
      if (mrd != TriSign::kEps) return mrd;
    }
    return TriSign::kEps;
  };

  auto element_final = [&](const Element* el) {
    TriSign r;
    TriSign rw;
    recursive_pair(el, &r, &rw);
    TriSign rd = recursive_schema(el);
    return FirstDef({initial.Get(el, kL), r, initial.Get(el, kLD), rd,
                     initial.Get(el, kLW), rw});
  };

  std::function<void(const Element*)> visit = [&](const Element* el) {
    NodeLabel& lab = labels.At(el);
    lab.final_sign = element_final(el);
    for (const auto& attr : el->attributes()) {
      TriSign r;
      TriSign rw;
      recursive_pair(el, &r, &rw);
      TriSign inst = First2(initial.Get(el, kL), r);
      TriSign schema = First2(initial.Get(el, kLD), recursive_schema(el));
      TriSign weak = First2(initial.Get(el, kLW), rw);
      labels.At(attr.get()).final_sign =
          FirstDef({initial.Get(attr.get(), kL), inst,
                    initial.Get(attr.get(), kLD), schema,
                    initial.Get(attr.get(), kLW), weak});
    }
    for (const auto& child : el->children()) {
      if (child->IsElement()) {
        visit(static_cast<const Element*>(child.get()));
      } else {
        labels.At(child.get()).final_sign = lab.final_sign;
      }
    }
  };
  visit(doc.root());
  return labels;
}

}  // namespace authz
}  // namespace xmlsec
