#ifndef XMLSEC_AUTHZ_LABELING_H_
#define XMLSEC_AUTHZ_LABELING_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "xml/dom.h"

namespace xmlsec {
namespace authz {

/// Sign values of the labeling process: '+', '-', or 'ε' (no
/// authorization).
enum class TriSign : uint8_t { kEps, kPlus, kMinus };

char TriSignToChar(TriSign s);

/// First value different from ε in the sequence — the paper's
/// `first_def`.
TriSign FirstDef(std::initializer_list<TriSign> signs);

/// The 6-tuple ⟨L, R, LD, RD, LW, RW⟩ attached to each node during
/// labeling, plus the pre-propagation ("explicit") values needed to
/// propagate element authorizations onto attributes, and the resulting
/// final sign.
struct NodeLabel {
  // Working values; r/rd/rw are merged with propagated parent values
  // during the pre-order pass.
  TriSign l = TriSign::kEps;
  TriSign r = TriSign::kEps;
  TriSign ld = TriSign::kEps;
  TriSign rd = TriSign::kEps;
  TriSign lw = TriSign::kEps;
  TriSign rw = TriSign::kEps;

  // Values as set by initial_label, before propagation (used when
  // propagating an element's Local authorizations to its attributes).
  TriSign l_explicit = TriSign::kEps;
  TriSign ld_explicit = TriSign::kEps;
  TriSign lw_explicit = TriSign::kEps;

  /// The winning sign for the node (ε when no authorization applies —
  /// interpreted by the completeness policy at prune time).
  TriSign final_sign = TriSign::kEps;

  std::string ToString() const;
};

/// Labels for every node of one document, indexed by `doc_order()`.
class LabelMap {
 public:
  LabelMap() = default;
  explicit LabelMap(size_t node_count) : labels_(node_count) {}

  NodeLabel& At(const xml::Node* node) {
    return labels_[static_cast<size_t>(node->doc_order())];
  }
  const NodeLabel& At(const xml::Node* node) const {
    return labels_[static_cast<size_t>(node->doc_order())];
  }

  /// Final sign of `node` (ε for nodes outside the map).
  TriSign FinalSign(const xml::Node* node) const {
    auto index = static_cast<size_t>(node->doc_order());
    return index < labels_.size() ? labels_[index].final_sign : TriSign::kEps;
  }

  size_t size() const { return labels_.size(); }

  /// Opens a gap of `count` default (ε) labels at index `start`,
  /// shifting later entries up.  Used by the incremental write path
  /// when a mutation created one contiguous doc-order block of nodes:
  /// every surviving label lands at its post-Reindex index with a
  /// single shift instead of a per-node stash.
  void InsertGap(size_t start, size_t count) {
    labels_.insert(labels_.begin() + static_cast<ptrdiff_t>(start), count,
                   NodeLabel{});
  }

 private:
  std::vector<NodeLabel> labels_;
};

/// Slot indices of the 6-tuple ⟨L, R, LD, RD, LW, RW⟩.
enum class LabelSlot : int { kL = 0, kR = 1, kLD = 2, kRD = 3, kLW = 4,
                             kRW = 5 };

/// Explicit (pre-propagation) slot signs for every node of one document,
/// indexed by `doc_order()`: the outcome of requester filtering, XPath
/// target marking, subject-specificity override, and per-slot conflict
/// resolution — everything of the paper's `initial_label` — before any
/// parent→child propagation.
///
/// Shared by `TreeLabeler`, the naive oracle, and the single-pass view
/// projector (authz/projector.h), which fuses the propagation pass with
/// the copy-out of visible nodes.
class ExplicitSigns {
 public:
  ExplicitSigns() = default;
  explicit ExplicitSigns(size_t node_count)
      : slots_(node_count, kAllEps) {}

  TriSign Get(const xml::Node* node, LabelSlot slot) const {
    return slots_[static_cast<size_t>(node->doc_order())]
                 [static_cast<size_t>(slot)];
  }
  const std::array<TriSign, 6>& Row(const xml::Node* node) const {
    return slots_[static_cast<size_t>(node->doc_order())];
  }
  std::array<TriSign, 6>& MutableRow(size_t node_index) {
    return slots_[node_index];
  }

  size_t size() const { return slots_.size(); }

 private:
  static constexpr std::array<TriSign, 6> kAllEps = {
      TriSign::kEps, TriSign::kEps, TriSign::kEps,
      TriSign::kEps, TriSign::kEps, TriSign::kEps};
  std::vector<std::array<TriSign, 6>> slots_;
};

/// Counters from one labeling run (exposed for benchmarks and
/// EXPERIMENTS.md).
struct LabelingStats {
  int64_t applicable_instance_auths = 0;
  int64_t applicable_schema_auths = 0;
  int64_t xpath_evaluations = 0;
  int64_t target_nodes = 0;  ///< total nodes selected by authorizations
  int64_t labeled_nodes = 0;
  /// Compiled-labeling split (zero under the pure XPath path): nodes
  /// whose explicit signs came from an automaton table row vs. nodes a
  /// residual (value-dependent) authorization landed on, requiring a
  /// joint per-slot resolution with the XPath-evaluated candidates.
  int64_t table_nodes = 0;
  int64_t residual_nodes = 0;
  /// 1 when a compiled labeling attempt aborted on a schema mismatch and
  /// the request was served through the XPath path instead.
  int64_t compiled_fallbacks = 0;
};

/// The compute-view tree labeler (paper Fig. 2).
///
/// Given a document, the instance-level authorizations defined on it, the
/// schema-level authorizations defined on its DTD, and a requester, it
/// produces the final sign of every node in a single pre-order pass:
///
///  1. authorizations not applicable to the requester are dropped;
///  2. each remaining authorization's path expression is evaluated once,
///     marking its target nodes (`initial_label`);
///  3. per node and per authorization type, authorizations whose subject
///     is strictly less specific than another applicable one are
///     discarded, and remaining conflicts resolve by the configured
///     conflict policy (the paper: denials take precedence);
///  4. recursive signs propagate parent→child unless overridden on the
///     child ("most specific object takes precedence"), schema-level
///     signs propagate independently, and the final sign per node is
///     `first_def(L, R, LD, RD, LW, RW)` — instance over schema over
///     weak; an element's Local signs propagate to its attributes.
class TreeLabeler {
 public:
  TreeLabeler(const GroupStore* groups, PolicyOptions policy)
      : groups_(groups), policy_(policy) {}

  /// Labels `doc`.  The document must be `Reindex()`ed (parsers do this).
  /// Relative path expressions are evaluated with the root element as
  /// context node; absolute ones from the document node.
  Result<LabelMap> Label(const xml::Document& doc,
                         std::span<const Authorization> instance_auths,
                         std::span<const Authorization> schema_auths,
                         const Requester& rq,
                         LabelingStats* stats = nullptr) const;

 private:
  const GroupStore* groups_;
  PolicyOptions policy_;
};

/// Runs requester filtering and initial labeling for both authorization
/// levels: evaluates every applicable authorization's path expression
/// once against `doc` and resolves each (node, slot) candidate list by
/// subject specificity and the conflict policy.  The propagation passes
/// (`TreeLabeler`, `ProjectView`) consume the result.
Result<ExplicitSigns> ComputeExplicitSigns(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy,
    LabelingStats* stats = nullptr);

/// Which slot of the 6-tuple an authorization contributes to for a given
/// target node.  Recursive types act as Local on attribute targets (an
/// attribute has no subtree to propagate into).
LabelSlot SlotForTarget(const Authorization& auth, bool schema_level,
                        bool target_is_attribute);

/// Resolves one (node, slot) candidate list: drop authorizations whose
/// subject is strictly less specific than another candidate's, then
/// combine the survivors per the conflict policy.  Order-independent;
/// duplicate pointers are harmless.
TriSign ResolveSlotCandidates(const std::vector<const Authorization*>& candidates,
                              const GroupStore& groups, ConflictPolicy policy);

/// Sparse per-(node, slot) candidate lists — the target-marking half of
/// `initial_label`, before subject-specificity and conflict resolution.
/// Keys are `doc_order * 6 + slot`; `touched[doc_order]` flags nodes
/// holding at least one candidate.  The compiled labeling path collects
/// these for the *residual* (value-dependent) authorizations only and
/// joint-resolves them with the automaton's table candidates; the pure
/// XPath path resolves them directly into an `ExplicitSigns`.
struct SlotCandidates {
  std::unordered_map<uint64_t, std::vector<const Authorization*>> slots;
  std::vector<uint8_t> touched;

  static uint64_t KeyOf(int64_t doc_order, LabelSlot slot) {
    return static_cast<uint64_t>(doc_order) * 6 +
           static_cast<uint64_t>(slot);
  }
};

/// Requester filtering + XPath target marking for both authorization
/// levels.  The returned pointers refer into the input spans.
Result<SlotCandidates> CollectSlotCandidates(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy,
    LabelingStats* stats = nullptr);

/// The pre-order propagation pass alone (paper Fig. 2, procedure
/// `label`) over precomputed explicit signs.  `TreeLabeler::Label` is
/// `ComputeExplicitSigns` followed by this; the compiled labeling path
/// substitutes automaton table lookups for the first half.
LabelMap PropagateSigns(const xml::Document& doc, const ExplicitSigns& initial);

/// Explicit-row callback for `RelabelSubtree`: the pre-propagation
/// 6-tuple of one element or attribute node (never called for other
/// node kinds).
using ExplicitRowFn =
    std::function<std::array<TriSign, 6>(const xml::Node*)>;

/// Subtree-scoped propagation — the incremental half of re-labeling
/// after an update.  Runs the exact propagation rules of
/// `PropagateSigns` over `node` and its descendants only, seeded from
/// `parent_label` (the already-propagated label of `node`'s parent
/// element, holding merged r/rd/rw and the `*_explicit` values its
/// attributes inherit).  `node` may be an element, an attribute, or
/// character data (which copies the parent's final sign, as in the full
/// pass).  `labels` must already be sized for the current
/// `Document::Reindex()` numbering; entries outside the subtree are
/// left untouched.
void RelabelSubtree(const xml::Node* node, const NodeLabel& parent_label,
                    const ExplicitRowFn& rows, LabelMap* labels);

/// Lazy per-node explicit-sign source for consumers that touch only a
/// slice of the document (the update path's incremental re-label).
/// Obtained from `ExplicitSignEngine::NewNodeResolver`; `RowFor` must
/// be valid for any node of the document the resolver was created for,
/// in its *current* `Reindex()` numbering.
class NodeSignResolver {
 public:
  virtual ~NodeSignResolver() = default;

  /// Pre-propagation 6-tuple of `node` (all-ε for node kinds that carry
  /// no explicit signs).
  virtual std::array<TriSign, 6> RowFor(const xml::Node& node) = 0;

  /// Sticky: true once any resolved node failed to conform to the
  /// schema the engine was compiled from.  Callers must then discard
  /// every row obtained from this resolver and fall back to a full
  /// re-label (fail-safe, never fail-open).
  virtual bool schema_mismatch() const = 0;
};

/// Interface of a schema-compiled explicit-sign source (implemented by
/// `analysis::PolicyAutomaton`).  `ComputeSigns` replaces
/// `ComputeExplicitSigns` on the serving path: statically decidable
/// authorizations resolve by table lookup while residual value-dependent
/// ones still evaluate through XPath.  When the document does not
/// conform to the schema the engine was compiled from, the engine sets
/// `*schema_mismatch` and returns; the caller must discard the result
/// and fall back to the XPath path (fail-safe, never fail-open).
class ExplicitSignEngine {
 public:
  virtual ~ExplicitSignEngine() = default;

  virtual Result<ExplicitSigns> ComputeSigns(const xml::Document& doc,
                                             const Requester& rq,
                                             const GroupStore& groups,
                                             PolicyOptions policy,
                                             LabelingStats* stats,
                                             bool* schema_mismatch) const = 0;

  /// True when *every* authorization compiled into the engine resolved
  /// statically (no residual value-dependent or opaque paths): explicit
  /// signs then depend only on each node's root-to-node tag word.  That
  /// is the soundness premise of subtree-scoped incremental re-labeling
  /// — a mutation inside a subtree cannot change the tag word (hence
  /// the explicit row, hence with parent→child-only propagation the
  /// final sign) of any node outside it.
  virtual bool fully_decidable() const { return false; }

  /// Per-node resolver over the same table (see `NodeSignResolver`);
  /// nullptr when the engine does not support lazy resolution or when
  /// construction failed.  Only meaningful when `fully_decidable()`.
  virtual std::unique_ptr<NodeSignResolver> NewNodeResolver(
      const xml::Document& doc, const Requester& rq,
      const GroupStore& groups, PolicyOptions policy) const {
    (void)doc;
    (void)rq;
    (void)groups;
    (void)policy;
    return nullptr;
  }
};

/// Reference labeler that applies the model's *declarative* semantics
/// independently per node (for each node, walk its ancestor chain to find
/// the most specific applicable authorizations), with no propagation
/// pass.  Produces the same final signs as `TreeLabeler` — used as a
/// differential-testing oracle and as the baseline the paper's
/// propagation algorithm is measured against.
Result<LabelMap> LabelTreeNaive(const xml::Document& doc,
                                std::span<const Authorization> instance_auths,
                                std::span<const Authorization> schema_auths,
                                const Requester& rq, const GroupStore& groups,
                                PolicyOptions policy);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_LABELING_H_
