#include "authz/lint.h"

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace authz {

namespace {

bool UsesRequesterVariables(const std::string& path) {
  return path.find('$') != std::string::npos;
}

bool SameExceptSign(const Authorization& a, const Authorization& b) {
  return a.subject == b.subject && a.object == b.object &&
         a.action == b.action && a.type == b.type &&
         a.valid_from == b.valid_from && a.valid_until == b.valid_until;
}

}  // namespace

std::vector<LintFinding> LintPolicy(
    std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const GroupStore& groups,
    const xml::Document* doc) {
  std::vector<LintFinding> findings;
  auto add = [&](LintSeverity severity, const char* code,
                 std::string message, int index) {
    findings.push_back(LintFinding{severity, code, std::move(message), index});
  };

  // Gather the combined view with level flags.
  struct Entry {
    const Authorization* auth;
    bool schema;
  };
  std::vector<Entry> all;
  for (const Authorization& a : instance_auths) all.push_back({&a, false});
  for (const Authorization& a : schema_auths) all.push_back({&a, true});

  for (size_t i = 0; i < all.size(); ++i) {
    const Authorization& auth = *all[i].auth;
    const int index = static_cast<int>(i);

    if (all[i].schema && IsWeak(auth.type)) {
      add(LintSeverity::kError, "weak-schema",
          "schema-level authorization is declared weak: " + auth.ToString(),
          index);
    }

    if (auth.valid_from > auth.valid_until) {
      add(LintSeverity::kError, "empty-window",
          "validity window is empty (valid_from > valid_until): " +
              auth.ToString(),
          index);
    }

    const bool has_membership_edges =
        groups.memberships().count(auth.subject.ug) > 0;
    if (!auth.subject.ug.empty() &&
        auth.subject.ug != groups.universal_group() &&
        !groups.HasUser(auth.subject.ug) &&
        !groups.HasGroup(auth.subject.ug) && !has_membership_edges) {
      add(LintSeverity::kWarning, "unknown-subject",
          "subject '" + auth.subject.ug +
              "' is not a declared user or group",
          index);
    }

    if (!auth.object.path.empty()) {
      auto compiled = xpath::CompileXPath(auth.object.path);
      if (!compiled.ok()) {
        add(LintSeverity::kError, "bad-path",
            "object path does not compile: " + compiled.status().message(),
            index);
      } else if (doc != nullptr && doc->root() != nullptr &&
                 !UsesRequesterVariables(auth.object.path)) {
        xpath::Evaluator evaluator;
        auto selected = evaluator.SelectNodes(**compiled, doc->root());
        if (selected.ok() && selected->empty()) {
          add(LintSeverity::kWarning, "dead-target",
              "object path selects no node of the document: " +
                  auth.object.path,
              index);
        }
      }
    }

    // Pairwise checks against earlier entries (same level only).
    for (size_t j = 0; j < i; ++j) {
      if (all[j].schema != all[i].schema) continue;
      const Authorization& other = *all[j].auth;
      if (!SameExceptSign(auth, other)) continue;
      if (auth.sign == other.sign) {
        add(LintSeverity::kWarning, "duplicate",
            "authorization repeats entry #" + std::to_string(j) + ": " +
                auth.ToString(),
            index);
      } else {
        add(LintSeverity::kWarning, "contradiction",
            "authorization contradicts entry #" + std::to_string(j) +
                " (same subject/object/type, opposite sign): " +
                auth.ToString(),
            index);
      }
    }
  }
  return findings;
}

std::string LintReport(const std::vector<LintFinding>& findings) {
  if (findings.empty()) return "policy lint: clean\n";
  std::string out;
  for (const LintFinding& finding : findings) {
    out += finding.severity == LintSeverity::kError ? "error" : "warning";
    out += "[" + finding.code + "]";
    if (finding.auth_index >= 0) {
      out += " auth#" + std::to_string(finding.auth_index);
    }
    out += ": " + finding.message + "\n";
  }
  return out;
}

}  // namespace authz
}  // namespace xmlsec
