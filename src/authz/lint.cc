#include "authz/lint.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "analysis/schema_paths.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace authz {

namespace {

bool UsesRequesterVariables(const std::string& path) {
  return path.find('$') != std::string::npos;
}

/// Bucket key of the pairwise duplicate/contradiction scan: everything
/// of the 5-tuple except the sign and the validity window, plus the
/// level.  `\x1f` (ASCII unit separator) keeps fields unambiguous.
std::string PairKey(const Authorization& auth, bool schema_level) {
  std::string key = schema_level ? "s" : "i";
  key += '\x1f';
  key += auth.subject.ug;
  key += '\x1f';
  key += auth.subject.ip.ToString();
  key += '\x1f';
  key += auth.subject.sym.ToString();
  key += '\x1f';
  key += auth.object.uri;
  key += '\x1f';
  key += auth.object.path;
  key += '\x1f';
  key += ActionToString(auth.action);
  key += '\x1f';
  key += AuthTypeToString(auth.type);
  return key;
}

bool WindowsOverlap(const Authorization& a, const Authorization& b) {
  return std::max(a.valid_from, b.valid_from) <=
         std::min(a.valid_until, b.valid_until);
}

}  // namespace

std::vector<LintFinding> LintPolicy(
    std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const GroupStore& groups,
    const xml::Document* doc, const xml::Dtd* dtd) {
  std::vector<LintFinding> findings;
  auto add = [&](LintSeverity severity, const char* code,
                 std::string message, int index) {
    findings.push_back(LintFinding{severity, code, std::move(message), index});
  };

  // Gather the combined view with level flags.
  struct Entry {
    const Authorization* auth;
    bool schema;
  };
  std::vector<Entry> all;
  for (const Authorization& a : instance_auths) all.push_back({&a, false});
  for (const Authorization& a : schema_auths) all.push_back({&a, true});

  // Schema-aware satisfiability (only when a DTD is supplied).
  analysis::SchemaGraph graph;
  std::unique_ptr<analysis::PathAnalyzer> path_analyzer;
  if (dtd != nullptr) {
    graph = analysis::SchemaGraph::Build(*dtd);
    if (graph.valid()) {
      path_analyzer = std::make_unique<analysis::PathAnalyzer>(&graph);
    }
  }

  // Pairwise duplicate/contradiction buckets: key -> earlier indices.
  std::unordered_map<std::string, std::vector<size_t>> buckets;

  for (size_t i = 0; i < all.size(); ++i) {
    const Authorization& auth = *all[i].auth;
    const int index = static_cast<int>(i);

    if (all[i].schema && IsWeak(auth.type)) {
      add(LintSeverity::kError, "weak-schema",
          "schema-level authorization is declared weak: " + auth.ToString(),
          index);
    }

    if (auth.valid_from > auth.valid_until) {
      add(LintSeverity::kError, "empty-window",
          "validity window is empty (valid_from > valid_until): " +
              auth.ToString(),
          index);
    }

    const bool has_membership_edges =
        groups.memberships().count(auth.subject.ug) > 0;
    if (!auth.subject.ug.empty() &&
        auth.subject.ug != groups.universal_group() &&
        !groups.HasUser(auth.subject.ug) &&
        !groups.HasGroup(auth.subject.ug) && !has_membership_edges) {
      add(LintSeverity::kWarning, "unknown-subject",
          "subject '" + auth.subject.ug +
              "' is not a declared user or group",
          index);
    }

    if (!auth.object.path.empty()) {
      auto compiled = xpath::CompileXPath(auth.object.path);
      if (!compiled.ok()) {
        add(LintSeverity::kError, "bad-path",
            "object path does not compile: " + compiled.status().message(),
            index);
      } else {
        if (doc != nullptr && doc->root() != nullptr &&
            !UsesRequesterVariables(auth.object.path)) {
          xpath::Evaluator evaluator;
          auto selected = evaluator.SelectNodes(**compiled, doc->root());
          if (selected.ok() && selected->empty()) {
            add(LintSeverity::kWarning, "dead-target",
                "object path selects no node of the document: " +
                    auth.object.path,
                index);
          }
        }
        if (path_analyzer != nullptr &&
            path_analyzer->Analyze(**compiled).definitely_empty()) {
          add(LintSeverity::kWarning, "unsat-object",
              "object path can never select a node of any document valid "
              "against the DTD: " +
                  auth.object.path,
              index);
        }
        // Compiled-labeling advisories (meaningful only when a schema
        // is in play — without a DTD there is no automaton to defeat):
        // a value-dependent or opaque path keeps this authorization on
        // the per-request XPath path instead of the automaton's table.
        if (path_analyzer != nullptr) {
          analysis::PathClassification cls =
              analysis::ClassifyPath(auth.object.path);
          if (cls.verdict == analysis::PathCompilability::kValueDependent) {
            std::string hint =
                cls.residual_predicates.empty()
                    ? std::string("a value-dependent predicate")
                    : "predicate [" + cls.residual_predicates.front() + "]";
            add(LintSeverity::kWarning, "value-dependent-path",
                "object path defeats static compilation: " + hint +
                    " depends on document values" +
                    (cls.uses_requester_variables
                         ? " or requester bindings ($user/$ip/$sym/$time)"
                         : "") +
                    "; the authorization is re-evaluated through XPath on "
                    "every request — drop the predicate or split the "
                    "policy by subject to make it table-resolvable",
                index);
          } else if (cls.verdict == analysis::PathCompilability::kOpaque) {
            add(LintSeverity::kWarning, "opaque-path",
                "object path is outside the statically compilable "
                "fragment (" +
                    cls.reason +
                    "); the authorization always falls back to per-request "
                    "XPath evaluation",
                index);
          }
        }
      }
    }

    // Pairwise checks against earlier same-bucket entries: same level,
    // subject, object, action, and type; flagged only when the validity
    // windows overlap (disjoint windows cannot interact at runtime).
    std::vector<size_t>& bucket = buckets[PairKey(auth, all[i].schema)];
    for (size_t j : bucket) {
      const Authorization& other = *all[j].auth;
      if (!WindowsOverlap(auth, other)) continue;
      if (auth.sign == other.sign) {
        add(LintSeverity::kWarning, "duplicate",
            "authorization repeats entry #" + std::to_string(j) + ": " +
                auth.ToString(),
            index);
      } else {
        add(LintSeverity::kWarning, "contradiction",
            "authorization contradicts entry #" + std::to_string(j) +
                " (same subject/object/type, opposite sign): " +
                auth.ToString(),
            index);
      }
    }
    bucket.push_back(i);
  }
  return findings;
}

std::string LintReport(const std::vector<LintFinding>& findings) {
  if (findings.empty()) return "policy lint: clean\n";
  std::string out;
  for (const LintFinding& finding : findings) {
    out += finding.severity == LintSeverity::kError ? "error" : "warning";
    out += "[" + finding.code + "]";
    if (finding.auth_index >= 0) {
      out += " auth#" + std::to_string(finding.auth_index);
    }
    out += ": " + finding.message + "\n";
  }
  return out;
}

}  // namespace authz
}  // namespace xmlsec
