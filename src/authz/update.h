#ifndef XMLSEC_AUTHZ_UPDATE_H_
#define XMLSEC_AUTHZ_UPDATE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "xml/dom.h"

namespace xmlsec {
namespace authz {

/// Kinds of document mutations subject to write control.
enum class UpdateOpKind {
  kInsertChild,      ///< append a parsed XML fragment under the target
  kDeleteNode,       ///< remove the target element and its subtree
  kSetAttribute,     ///< set/overwrite an attribute on the target
  kRemoveAttribute,  ///< drop an attribute from the target
  kSetText,          ///< replace the target's children with one text node
};

/// One mutation request.  `target` is an XPath expression that must
/// select exactly one element of the document.
struct UpdateOp {
  UpdateOpKind kind = UpdateOpKind::kSetText;
  std::string target;
  std::string name;      ///< attribute name (Set/RemoveAttribute)
  std::string value;     ///< attribute value / text (SetAttribute, SetText)
  std::string fragment;  ///< XML fragment (InsertChild), e.g. "<x>1</x>"
  /// kInsertChild placement: XPath (evaluated with the target as context
  /// node) selecting the child to insert before; empty appends.  Lets
  /// callers satisfy ordered content models.
  std::string before;
};

/// Outcome of a successful update batch.
struct UpdateOutcome {
  std::unique_ptr<xml::Document> document;  ///< mutated copy
  int64_t ops_applied = 0;
  /// Re-labeling strategy split: ops whose post-state signs were
  /// recomputed only inside the mutated region (sound when the engine is
  /// fully decidable) vs. ops that paid a whole-document re-label
  /// (value-dependent policies, resolver failure, or schema mismatch).
  int64_t incremental_relabels = 0;
  int64_t full_relabels = 0;
};

/// Write-action enforcement — the paper's §8 "support for write and
/// update operations" future-work item, realized on the same labeling
/// machinery: the document is labeled under `Action::kWrite`
/// authorizations, and an operation is legal iff every node it touches
/// carries a '+' write label:
///
///   * kSetAttribute / kRemoveAttribute: the attribute's label when it
///     exists; creating a NEW attribute requires '+' on the element AND
///     a '+' post-state label on the created attribute itself, so
///     attribute-scoped denials (instance or schema level) cannot be
///     bypassed by delete-then-recreate;
///   * kSetText: the element and every removed child before the write,
///     and the created text node after it;
///   * kDeleteNode: the element and its *entire* subtree — a requester
///     cannot delete content they may not even know about;
///   * kInsertChild: the target element before the write (a writer of an
///     element may extend its content), and — fail-closed — every node
///     of the inserted subtree after it: the fragment is parsed in the
///     host document's DTD context (entities resolve, defaulted
///     attributes materialize) and the whole inserted region must carry
///     '+' write labels in the post-mutation labeling; 'ε' denies.
///
/// The batch is atomic: it is applied to a clone, each operation checked
/// against the write labeling of the current clone state, and the result
/// optionally re-validated against the document's DTD; any failure
/// leaves the original untouched.
///
/// Re-labeling between ops is incremental when `engine` (the compiled
/// policy automaton) reports the policy fully decidable: signs outside
/// the mutated region are provably unchanged, so only created nodes are
/// labeled, via the engine's lazy per-node resolver.  Anything else —
/// no engine, residual value-dependent authorizations, resolver
/// construction failure, or a schema mismatch met while resolving —
/// falls back to a whole-document re-label, counted in the outcome.
class UpdateProcessor {
 public:
  UpdateProcessor(const GroupStore* groups, PolicyOptions policy = {})
      : groups_(groups), policy_(policy) {
    policy_.action = static_cast<int>(Action::kWrite);
  }

  /// Applies `ops` on behalf of `rq`.  Returns PermissionDenied when an
  /// operation touches or creates a node without a positive write label,
  /// InvalidArgument when a target selects zero or several nodes, and
  /// ValidationError when the mutated document violates its DTD.
  Result<UpdateOutcome> Apply(const xml::Document& doc,
                              std::span<const Authorization> instance_auths,
                              std::span<const Authorization> schema_auths,
                              const Requester& rq,
                              std::span<const UpdateOp> ops,
                              bool validate_result = true,
                              const ExplicitSignEngine* engine = nullptr) const;

 private:
  const GroupStore* groups_;
  PolicyOptions policy_;
};

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_UPDATE_H_
