#include "authz/authorization.h"

namespace xmlsec {
namespace authz {

Result<ObjectSpec> ObjectSpec::Parse(std::string_view text) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != ':') continue;
    // "://" — URI scheme separator.
    if (i + 2 < text.size() && text[i + 1] == '/' && text[i + 2] == '/') {
      i += 2;
      continue;
    }
    // "::" — XPath axis separator (should not appear before the split,
    // but be safe).
    if (i + 1 < text.size() && text[i + 1] == ':') {
      ++i;
      continue;
    }
    ObjectSpec spec;
    spec.uri = std::string(text.substr(0, i));
    spec.path = std::string(text.substr(i + 1));
    if (spec.uri.empty()) {
      return Status::InvalidArgument("object '" + std::string(text) +
                                     "' has an empty URI");
    }
    return spec;
  }
  if (text.empty()) {
    return Status::InvalidArgument("empty authorization object");
  }
  ObjectSpec spec;
  spec.uri = std::string(text);
  return spec;
}

std::string_view SignToString(Sign sign) {
  return sign == Sign::kPlus ? "+" : "-";
}

std::string_view AuthTypeToString(AuthType type) {
  switch (type) {
    case AuthType::kLocal:
      return "L";
    case AuthType::kRecursive:
      return "R";
    case AuthType::kLocalWeak:
      return "LW";
    case AuthType::kRecursiveWeak:
      return "RW";
  }
  return "?";
}

std::string_view ActionToString(Action action) {
  switch (action) {
    case Action::kRead:
      return "read";
    case Action::kWrite:
      return "write";
  }
  return "?";
}

Result<Sign> ParseSign(std::string_view text) {
  if (text == "+") return Sign::kPlus;
  if (text == "-") return Sign::kMinus;
  return Status::InvalidArgument("invalid sign '" + std::string(text) +
                                 "' (expected '+' or '-')");
}

Result<AuthType> ParseAuthType(std::string_view text) {
  if (text == "L") return AuthType::kLocal;
  if (text == "R") return AuthType::kRecursive;
  if (text == "LW") return AuthType::kLocalWeak;
  if (text == "RW") return AuthType::kRecursiveWeak;
  return Status::InvalidArgument("invalid authorization type '" +
                                 std::string(text) +
                                 "' (expected L, R, LW, or RW)");
}

Result<Action> ParseAction(std::string_view text) {
  if (text == "read") return Action::kRead;
  if (text == "write") return Action::kWrite;
  return Status::Unimplemented("unsupported action '" + std::string(text) +
                               "' (expected 'read' or 'write')");
}

std::string Authorization::ToString() const {
  return "<" + subject.ToString() + ", " + object.ToString() + ", " +
         std::string(ActionToString(action)) + ", " +
         std::string(SignToString(sign)) + ", " +
         std::string(AuthTypeToString(type)) + ">";
}

}  // namespace authz
}  // namespace xmlsec
