#include "authz/projector.h"

#include <cassert>
#include <chrono>

namespace xmlsec {
namespace authz {

namespace {

using xml::Attr;
using xml::Document;
using xml::Element;
using xml::Node;

using StageClock = std::chrono::steady_clock;

int64_t NsSince(StageClock::time_point begin) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             StageClock::now() - begin)
      .count();
}

TriSign First2(TriSign a, TriSign b) { return a != TriSign::kEps ? a : b; }

/// The working 6-tuple of one element during the fused walk — the same
/// values `TreeLabeler`'s Propagator would store in the LabelMap, held
/// on the recursion stack instead of materialized per node.
struct Signs {
  TriSign l = TriSign::kEps;
  TriSign r = TriSign::kEps;
  TriSign ld = TriSign::kEps;
  TriSign rd = TriSign::kEps;
  TriSign lw = TriSign::kEps;
  TriSign rw = TriSign::kEps;
  TriSign l_explicit = TriSign::kEps;
  TriSign ld_explicit = TriSign::kEps;
  TriSign lw_explicit = TriSign::kEps;
  TriSign final_sign = TriSign::kEps;
};

bool IsPermitted(TriSign sign, CompletenessPolicy completeness) {
  if (completeness == CompletenessPolicy::kClosed) {
    return sign == TriSign::kPlus;
  }
  return sign != TriSign::kMinus;  // Open: ε reads as permission.
}

/// The fused propagate-and-copy recursion.  Mirrors, rule for rule,
/// `Propagator` (labeling.cc) for the sign computation and `Pruner`
/// (prune.cc) for what survives and for the stat counters.
class Projector {
 public:
  Projector(const ExplicitSigns& initial, CompletenessPolicy completeness,
            PruneStats* stats)
      : initial_(initial), completeness_(completeness), stats_(stats) {}

  /// Projects the subtree rooted at `el`; returns nullptr when nothing
  /// of it is visible (the caller accounts the removal).
  std::unique_ptr<Element> ProjectElement(const Element* el,
                                          const Signs& parent) {
    Signs lab = Init(el);
    // Most specific object overrides: the node's own recursive signs (of
    // either strength) suppress the propagated pair; schema-level
    // recursive signs propagate independently.
    if (lab.r == TriSign::kEps && lab.rw == TriSign::kEps) {
      lab.r = parent.r;
      lab.rw = parent.rw;
    }
    lab.rd = First2(lab.rd, parent.rd);
    lab.final_sign =
        FirstDef({lab.l, lab.r, lab.ld, lab.rd, lab.lw, lab.rw});
    const bool self_permitted = Permitted(lab.final_sign);
    const bool values_permitted = self_permitted;  // text visibility

    std::unique_ptr<Element> out;
    auto ensure_out = [&]() -> Element* {
      if (out == nullptr) {
        out = std::make_unique<Element>(el->tag());
        out->set_source_position(el->line(), el->column());
      }
      return out.get();
    };

    for (const auto& attr : el->attributes()) {
      if (Permitted(AttributeFinalSign(attr.get(), lab))) {
        std::unique_ptr<Node> cloned = attr->Clone(/*deep=*/true);
        std::unique_ptr<Attr> owned(static_cast<Attr*>(cloned.release()));
        Status s = ensure_out()->AddAttribute(std::move(owned));
        assert(s.ok());
        (void)s;
      } else {
        Count(&PruneStats::removed_attributes);
      }
    }

    for (const auto& child : el->children()) {
      if (child->IsElement()) {
        std::unique_ptr<Element> sub =
            ProjectElement(static_cast<const Element*>(child.get()), lab);
        if (sub != nullptr) {
          ensure_out()->AppendChild(std::move(sub));
        } else {
          Count(&PruneStats::removed_elements);
        }
      } else {
        // Text / CDATA / comment / PI nodes are the "values" of the
        // paper's tree: visible iff their element is.
        if (values_permitted) {
          ensure_out()->AppendChild(child->Clone(/*deep=*/false));
        } else {
          Count(&PruneStats::removed_character_data);
        }
      }
    }

    if (out == nullptr) {
      // Nothing visible below: the element survives only on its own
      // permission (a permitted-but-empty element keeps its tags).
      if (!self_permitted) return nullptr;
      ensure_out();
      return out;
    }
    if (!self_permitted && stats_ != nullptr) {
      stats_->skeleton_elements++;  // Tag-skeleton preservation.
    }
    return out;
  }

  /// Visibility of a node carrying no derived authorization — the fate
  /// of prolog/epilog comments and PIs, which plain tree authorizations
  /// never target.
  bool EpsilonPermitted() const {
    return IsPermitted(TriSign::kEps, completeness_);
  }

  void CountDocLevel(int64_t PruneStats::*field) { Count(field); }

 private:
  Signs Init(const Node* node) const {
    const auto& slots = initial_.Row(node);
    Signs lab;
    lab.l = slots[static_cast<size_t>(LabelSlot::kL)];
    lab.r = slots[static_cast<size_t>(LabelSlot::kR)];
    lab.ld = slots[static_cast<size_t>(LabelSlot::kLD)];
    lab.rd = slots[static_cast<size_t>(LabelSlot::kRD)];
    lab.lw = slots[static_cast<size_t>(LabelSlot::kLW)];
    lab.rw = slots[static_cast<size_t>(LabelSlot::kRW)];
    lab.l_explicit = lab.l;
    lab.ld_explicit = lab.ld;
    lab.lw_explicit = lab.lw;
    return lab;
  }

  TriSign AttributeFinalSign(const Attr* attr, const Signs& parent) const {
    Signs lab = Init(attr);
    // An element's Local authorizations cover its direct attributes; its
    // merged recursive signs cover them too, at lower priority (same
    // sequence as the element rule: instance, schema, weak).
    TriSign inst = First2(parent.l_explicit, parent.r);
    TriSign schema = First2(parent.ld_explicit, parent.rd);
    TriSign weak = First2(parent.lw_explicit, parent.rw);
    return FirstDef({lab.l, inst, lab.ld, schema, lab.lw, weak});
  }

  bool Permitted(TriSign sign) const {
    return IsPermitted(sign, completeness_);
  }

  void Count(int64_t PruneStats::*field) {
    if (stats_ != nullptr) (stats_->*field)++;
  }

  const ExplicitSigns& initial_;
  CompletenessPolicy completeness_;
  PruneStats* stats_;
};

}  // namespace

Result<std::unique_ptr<Document>> ProjectView(
    const Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, ProjectionStats* stats) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }

  StageClock::time_point stage_begin = StageClock::now();
  XMLSEC_ASSIGN_OR_RETURN(
      ExplicitSigns initial,
      ComputeExplicitSigns(doc, instance_auths, schema_auths, rq, groups,
                           policy,
                           stats != nullptr ? &stats->labeling : nullptr));
  if (stats != nullptr) {
    stats->labeling.labeled_nodes = doc.node_count();
    stats->label_ns = NsSince(stage_begin);
  }

  stage_begin = StageClock::now();
  XMLSEC_ASSIGN_OR_RETURN(
      std::unique_ptr<Document> out,
      ProjectWithSigns(doc, initial, policy.completeness,
                       stats != nullptr ? &stats->prune : nullptr));
  if (stats != nullptr) {
    stats->project_ns = NsSince(stage_begin);
  }
  return out;
}

Result<std::unique_ptr<Document>> ProjectWithSigns(const Document& doc,
                                                   const ExplicitSigns& initial,
                                                   CompletenessPolicy completeness,
                                                   PruneStats* stats) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  if (stats != nullptr) {
    stats->nodes_before = doc.node_count();
  }
  Projector projector(initial, completeness, stats);

  auto out = std::make_unique<Document>();
  if (doc.has_xml_decl()) {
    out->SetXmlDecl(doc.version(), doc.encoding(), doc.standalone());
  }
  out->set_doctype_name(doc.doctype_name());
  out->set_doctype_system_id(doc.doctype_system_id());

  const Signs no_parent;  // All ε: the root merges against nothing.
  for (const auto& child : doc.children()) {
    if (child->IsElement()) {
      std::unique_ptr<Element> projected = projector.ProjectElement(
          static_cast<const Element*>(child.get()), no_parent);
      if (projected != nullptr) {
        out->AppendChild(std::move(projected));
      } else {
        projector.CountDocLevel(&PruneStats::removed_elements);
      }
    } else {
      // Prolog/epilog comments and PIs carry no derived authorization:
      // the completeness policy alone decides them (prune.cc does the
      // same through the default ε label).
      if (projector.EpsilonPermitted()) {
        out->AppendChild(child->Clone(/*deep=*/false));
      } else {
        projector.CountDocLevel(&PruneStats::removed_character_data);
      }
    }
  }
  out->Reindex();
  if (stats != nullptr) {
    stats->nodes_after = out->node_count();
  }
  return out;
}

}  // namespace authz
}  // namespace xmlsec
