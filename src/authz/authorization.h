#ifndef XMLSEC_AUTHZ_AUTHORIZATION_H_
#define XMLSEC_AUTHZ_AUTHORIZATION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "common/result.h"
#include "authz/subject.h"

namespace xmlsec {
namespace authz {

/// An authorization object (paper §4): a protected resource URI,
/// optionally narrowed by an XPath path expression selecting elements or
/// attributes inside the document.
struct ObjectSpec {
  std::string uri;
  /// XPath expression; empty means the whole document (the root element
  /// with propagation per the authorization type).
  std::string path;

  /// Parses the paper's combined `URI:PE` notation.  The separator is the
  /// first ':' that neither starts a URI scheme ("://") nor belongs to an
  /// XPath axis ("::").  URIs containing bare ':' (e.g. a port number)
  /// must use the two-field constructor instead.
  static Result<ObjectSpec> Parse(std::string_view text);

  std::string ToString() const {
    return path.empty() ? uri : uri + ":" + path;
  }

  friend bool operator==(const ObjectSpec& a, const ObjectSpec& b) {
    return a.uri == b.uri && a.path == b.path;
  }
};

/// Sign of an authorization: permission or denial.
enum class Sign : uint8_t { kPlus, kMinus };

/// Authorization types (Definition 3): Local / Recursive, each optionally
/// Weak.  Local authorizations apply to the node and its direct
/// attributes; recursive ones propagate to the whole subtree.  Weak
/// authorizations are overridden by schema-level authorizations instead
/// of overriding them.
enum class AuthType : uint8_t {
  kLocal,          ///< L
  kRecursive,      ///< R
  kLocalWeak,      ///< LW
  kRecursiveWeak,  ///< RW
};

/// Actions.  The paper develops read and names write/update as future
/// work (§8); this library implements write enforcement through
/// `authz::UpdateProcessor` (see authz/update.h).
enum class Action : uint8_t { kRead, kWrite };

std::string_view SignToString(Sign sign);
std::string_view AuthTypeToString(AuthType type);
std::string_view ActionToString(Action action);

Result<Sign> ParseSign(std::string_view text);
Result<AuthType> ParseAuthType(std::string_view text);
Result<Action> ParseAction(std::string_view text);

inline bool IsRecursive(AuthType type) {
  return type == AuthType::kRecursive || type == AuthType::kRecursiveWeak;
}
inline bool IsWeak(AuthType type) {
  return type == AuthType::kLocalWeak || type == AuthType::kRecursiveWeak;
}

/// An access authorization — the 5-tuple of Definition 3, extended with
/// an optional validity window (the paper's §8 "time-based restrictions"
/// future work).
///
/// Whether an authorization is instance level or schema level is decided
/// by where its URI points (an XML document vs a DTD); the stores in
/// `server::Repository` and `SecurityProcessor` keep the two sets apart.
struct Authorization {
  Subject subject;
  ObjectSpec object;
  Action action = Action::kRead;
  Sign sign = Sign::kPlus;
  AuthType type = AuthType::kRecursive;

  /// Validity window in seconds since the epoch, inclusive.  The
  /// defaults make the authorization permanent; it applies to a request
  /// iff `valid_from <= Requester::time <= valid_until`.
  int64_t valid_from = std::numeric_limits<int64_t>::min();
  int64_t valid_until = std::numeric_limits<int64_t>::max();

  bool AppliesAtTime(int64_t time) const {
    return time >= valid_from && time <= valid_until;
  }

  std::string ToString() const;
};

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_AUTHORIZATION_H_
