#include "authz/policy.h"

namespace xmlsec {
namespace authz {

std::string_view ConflictPolicyToString(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kDenialsTakePrecedence:
      return "denials-take-precedence";
    case ConflictPolicy::kPermissionsTakePrecedence:
      return "permissions-take-precedence";
    case ConflictPolicy::kNothingTakesPrecedence:
      return "nothing-takes-precedence";
  }
  return "?";
}

std::string_view CompletenessPolicyToString(CompletenessPolicy policy) {
  switch (policy) {
    case CompletenessPolicy::kClosed:
      return "closed";
    case CompletenessPolicy::kOpen:
      return "open";
  }
  return "?";
}

}  // namespace authz
}  // namespace xmlsec
