#include "authz/xacl.h"

#include <limits>

#include "common/str_util.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {

namespace {

constexpr std::string_view kXaclDtd = R"(
<!ELEMENT xacl (authorization*)>
<!ATTLIST xacl base-uri CDATA #IMPLIED>
<!ELEMENT authorization EMPTY>
<!ATTLIST authorization
  subject CDATA #REQUIRED
  ip      CDATA "*"
  sym     CDATA "*"
  object  CDATA #REQUIRED
  path    CDATA #IMPLIED
  action  CDATA "read"
  sign    CDATA #REQUIRED
  type    (L|R|LW|RW) "R"
  valid-from  CDATA #IMPLIED
  valid-until CDATA #IMPLIED>
)";

bool IsAbsoluteUri(std::string_view uri) {
  return uri.find("://") != std::string_view::npos;
}

}  // namespace

std::string_view XaclDtd() { return kXaclDtd; }

Result<XaclFile> ParseXacl(std::string_view text) {
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                          xml::ParseDocument(text));
  // Validate against the built-in XACL DTD (ignoring any DTD the file
  // itself may carry).
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Dtd> dtd, xml::ParseDtd(kXaclDtd));
  dtd->set_name("xacl");
  xml::Validator validator(dtd.get());
  XMLSEC_RETURN_IF_ERROR(validator.Validate(doc.get()));

  const xml::Element* root = doc->root();
  XaclFile out;
  out.base_uri = root->GetAttribute("base-uri").value_or("");

  for (const xml::Element* el : root->GetElementsByTagName("authorization")) {
    Authorization auth;
    XMLSEC_ASSIGN_OR_RETURN(
        auth.subject,
        Subject::Make(el->GetAttribute("subject").value_or(""),
                      el->GetAttribute("ip").value_or("*"),
                      el->GetAttribute("sym").value_or("*")));
    if (auth.subject.ug.empty()) {
      return Status::InvalidArgument("XACL authorization has empty subject");
    }

    std::string object = el->GetAttribute("object").value_or("");
    std::optional<std::string> path = el->GetAttribute("path");
    if (path.has_value()) {
      auth.object.uri = std::move(object);
      auth.object.path = *path;
    } else {
      XMLSEC_ASSIGN_OR_RETURN(auth.object, ObjectSpec::Parse(object));
    }
    if (auth.object.uri.empty()) {
      return Status::InvalidArgument("XACL authorization has empty object");
    }
    if (!out.base_uri.empty() && !IsAbsoluteUri(auth.object.uri)) {
      auth.object.uri = out.base_uri + auth.object.uri;
    }

    XMLSEC_ASSIGN_OR_RETURN(
        auth.action, ParseAction(el->GetAttribute("action").value_or("read")));
    XMLSEC_ASSIGN_OR_RETURN(auth.sign,
                            ParseSign(el->GetAttribute("sign").value_or("")));
    XMLSEC_ASSIGN_OR_RETURN(
        auth.type, ParseAuthType(el->GetAttribute("type").value_or("R")));

    // Optional validity window (epoch seconds).
    for (auto [attr, field] :
         {std::pair{"valid-from", &auth.valid_from},
          std::pair{"valid-until", &auth.valid_until}}) {
      std::optional<std::string> raw = el->GetAttribute(attr);
      if (!raw.has_value()) continue;
      int64_t value = ParseDecimal(*raw);
      if (value < 0) {
        return Status::InvalidArgument(std::string("XACL ") + attr +
                                       " must be a non-negative epoch "
                                       "timestamp, got '" +
                                       *raw + "'");
      }
      *field = value;
    }
    out.authorizations.push_back(std::move(auth));
  }
  return out;
}

std::string SerializeXacl(const XaclFile& xacl) {
  xml::Document doc;
  doc.SetXmlDecl("1.0", "UTF-8", false);
  auto root = std::make_unique<xml::Element>("xacl");
  if (!xacl.base_uri.empty()) {
    root->SetAttribute("base-uri", xacl.base_uri);
  }
  for (const Authorization& auth : xacl.authorizations) {
    auto el = std::make_unique<xml::Element>("authorization");
    el->SetAttribute("subject", auth.subject.ug);
    el->SetAttribute("ip", auth.subject.ip.ToString());
    el->SetAttribute("sym", auth.subject.sym.ToString());
    std::string uri = auth.object.uri;
    if (!xacl.base_uri.empty() && StartsWith(uri, xacl.base_uri)) {
      uri = uri.substr(xacl.base_uri.size());
    }
    el->SetAttribute("object", uri);
    if (!auth.object.path.empty()) {
      el->SetAttribute("path", auth.object.path);
    }
    el->SetAttribute("action", ActionToString(auth.action));
    el->SetAttribute("sign", SignToString(auth.sign));
    el->SetAttribute("type", AuthTypeToString(auth.type));
    if (auth.valid_from != std::numeric_limits<int64_t>::min()) {
      el->SetAttribute("valid-from", std::to_string(auth.valid_from));
    }
    if (auth.valid_until != std::numeric_limits<int64_t>::max()) {
      el->SetAttribute("valid-until", std::to_string(auth.valid_until));
    }
    root->AppendChild(std::move(el));
  }
  doc.AppendChild(std::move(root));
  doc.Reindex();
  xml::SerializeOptions options;
  options.indent = 2;
  return xml::SerializeDocument(doc, options);
}

}  // namespace authz
}  // namespace xmlsec
