#ifndef XMLSEC_AUTHZ_PROCESSOR_H_
#define XMLSEC_AUTHZ_PROCESSOR_H_

#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/projector.h"
#include "authz/prune.h"
#include "authz/subject.h"
#include "xml/dom.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {

/// How `SecurityProcessor::ComputeView` materializes the view.
enum class ViewPipeline {
  /// Single-pass projection (authz/projector.h): one walk over the
  /// shared original document, copying only visible nodes.  The
  /// default — a deny-heavy request allocates its visible slice, not
  /// the whole tree.
  kProject,
  /// The paper-literal clone → label → prune pipeline.  Kept as the
  /// differential-testing oracle and benchmark baseline; byte-identical
  /// output (view_projection_test).
  kCloneLabelPrune,
};

/// Which explicit-sign source feeds the projection pipeline.
enum class LabelingMode {
  /// Evaluate every applicable authorization's XPath per request
  /// (labeling.cc) — the always-correct baseline.
  kXPath,
  /// Table lookups in a schema-compiled policy automaton
  /// (analysis/policy_automaton.h) for statically decidable
  /// authorizations, XPath only for the residual value-dependent ones.
  /// Requires an `ExplicitSignEngine`; without one — or when the engine
  /// reports a schema mismatch — the request silently serves through
  /// the XPath path (`LabelingStats::compiled_fallbacks`).
  kCompiled,
};

/// Configuration of the security processor.
struct ProcessorOptions {
  PolicyOptions policy;
  /// Check the *output* view against the loosened DTD (an invariant of
  /// the construction — §6.2); enable in tests and debugging.
  bool validate_output = false;
  ViewPipeline pipeline = ViewPipeline::kProject;
  LabelingMode labeling = LabelingMode::kXPath;
};

/// Aggregated metrics of one view computation.
struct ViewStats {
  LabelingStats labeling;
  PruneStats prune;
  /// Per-stage wall-clock durations in nanoseconds, filled by the
  /// security processor (project/label/prune/loosen) and the document
  /// server (repository lookup).  The serving layer feeds these into
  /// the observability subsystem's stage histograms and slow-request
  /// traces (src/obs); keeping them here costs four clock reads per
  /// view and spares the processor any dependency on obs.
  ///
  /// Under the projection pipeline `project_ns` covers the fused
  /// propagate-and-copy walk and `prune_ns` stays 0; under the legacy
  /// clone pipeline `project_ns` holds the deep-clone time and
  /// `prune_ns` the prune pass.
  int64_t lookup_ns = 0;
  int64_t project_ns = 0;
  int64_t label_ns = 0;
  int64_t prune_ns = 0;
  int64_t loosen_ns = 0;
};

/// The result of the paper's on-line transformation: a pruned document
/// whose attached DTD is the loosened schema.
struct View {
  std::unique_ptr<xml::Document> document;
  ViewStats stats;

  /// True when nothing at all is visible to the requester.
  bool empty() const { return document == nullptr || document->root() == nullptr; }

  /// Unparses the view (§7 step 4).
  std::string ToXml(const xml::SerializeOptions& options = {}) const {
    return document == nullptr ? std::string()
                               : xml::SerializeDocument(*document, options);
  }
};

/// Server-side security processor (paper §7): labels a document for a
/// requester, derives the visible view, and attaches the loosened DTD.
///
/// The execution cycle mirrors the paper's four steps; parsing and
/// unparsing live in the `xml` library, so `ComputeView` covers the tree
/// labeling and transformation steps and never mutates the input
/// document — by default it projects the visible slice out of the shared
/// original in a single pass (`ViewPipeline::kProject`); the paper's
/// literal clone→label→prune cycle remains available as
/// `ViewPipeline::kCloneLabelPrune`.
class SecurityProcessor {
 public:
  SecurityProcessor(const GroupStore* groups, ProcessorOptions options = {})
      : groups_(groups), options_(options) {}

  /// Computes the view of `rq` on `doc` under the given instance-level
  /// and schema-level authorizations (those defined on the document's
  /// URI and on its DTD's URI, respectively).
  ///
  /// Fails with InvalidArgument when a schema-level authorization is
  /// declared weak — the paper defines weakness only at instance level.
  Result<View> ComputeView(const xml::Document& doc,
                           std::span<const Authorization> instance_auths,
                           std::span<const Authorization> schema_auths,
                           const Requester& rq) const;

  /// As above, labeling through `engine` when
  /// `options().labeling == LabelingMode::kCompiled` and `engine` is
  /// non-null.  The engine must have been compiled from the same policy
  /// (instance + schema authorization sets) passed here — the spans are
  /// still needed for the XPath fallback when the document mismatches
  /// the compiled schema.
  Result<View> ComputeView(const xml::Document& doc,
                           std::span<const Authorization> instance_auths,
                           std::span<const Authorization> schema_auths,
                           const Requester& rq,
                           const ExplicitSignEngine* engine) const;

  const ProcessorOptions& options() const { return options_; }

 private:
  const GroupStore* groups_;
  ProcessorOptions options_;
};

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_PROCESSOR_H_
