#include "authz/prune.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::Element;
using xml::Node;

bool Permitted(TriSign sign, CompletenessPolicy completeness) {
  if (completeness == CompletenessPolicy::kClosed) {
    return sign == TriSign::kPlus;
  }
  return sign != TriSign::kMinus;  // Open: ε reads as permission.
}

class Pruner {
 public:
  Pruner(const LabelMap& labels, CompletenessPolicy completeness,
         PruneStats* stats)
      : labels_(labels), completeness_(completeness), stats_(stats) {}

  /// Returns true when `el` must be removed by its parent.
  bool PruneElement(Element* el) {
    // Post-order: children first.
    for (size_t i = el->child_count(); i > 0; --i) {
      Node* child = el->child(i - 1);
      if (child->IsElement()) {
        if (PruneElement(static_cast<Element*>(child))) {
          el->RemoveChildAt(i - 1);
          Count(&PruneStats::removed_elements);
        }
      } else {
        if (!Permitted(labels_.FinalSign(child), completeness_)) {
          el->RemoveChildAt(i - 1);
          Count(&PruneStats::removed_character_data);
        }
      }
    }
    // Attributes.
    std::vector<std::string> to_remove;
    for (const auto& attr : el->attributes()) {
      if (!Permitted(labels_.FinalSign(attr.get()), completeness_)) {
        to_remove.push_back(attr->name());
      }
    }
    for (const std::string& name : to_remove) {
      el->RemoveAttribute(name);
      Count(&PruneStats::removed_attributes);
    }

    const bool self_permitted =
        Permitted(labels_.FinalSign(el), completeness_);
    const bool empty = el->children().empty() && el->attributes().empty();
    if (!self_permitted && empty) return true;  // Remove whole subtree.
    if (!self_permitted && stats_ != nullptr) {
      stats_->skeleton_elements++;
    }
    return false;
  }

 private:
  void Count(int64_t PruneStats::*field) {
    if (stats_ != nullptr) (stats_->*field)++;
  }

  const LabelMap& labels_;
  CompletenessPolicy completeness_;
  PruneStats* stats_;
};

}  // namespace

void PruneDocument(xml::Document* doc, const LabelMap& labels,
                   CompletenessPolicy completeness, PruneStats* stats) {
  if (stats != nullptr) stats->nodes_before = doc->node_count();
  Pruner pruner(labels, completeness, stats);

  for (size_t i = doc->child_count(); i > 0; --i) {
    Node* child = doc->child(i - 1);
    if (child->IsElement()) {
      if (pruner.PruneElement(static_cast<Element*>(child))) {
        doc->RemoveChildAt(i - 1);
        if (stats != nullptr) stats->removed_elements++;
      }
    } else {
      // Prolog/epilog comments and PIs are content too: they survive only
      // when some authorization labels them positive, which plain tree
      // authorizations never do — under the closed policy they are
      // stripped from views.
      if (!Permitted(labels.FinalSign(child), completeness)) {
        doc->RemoveChildAt(i - 1);
        if (stats != nullptr) stats->removed_character_data++;
      }
    }
  }
  doc->Reindex();
  if (stats != nullptr) stats->nodes_after = doc->node_count();
}

}  // namespace authz
}  // namespace xmlsec
