#include "authz/loosening.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::AttrDecl;
using xml::AttrDefaultKind;
using xml::Cardinality;
using xml::ContentParticle;

Cardinality Loosen(Cardinality c) {
  switch (c) {
    case Cardinality::kOne:
      return Cardinality::kOptional;
    case Cardinality::kOneOrMore:
      return Cardinality::kZeroOrMore;
    case Cardinality::kOptional:
    case Cardinality::kZeroOrMore:
      return c;
  }
  return c;
}

void LoosenParticle(ContentParticle* particle) {
  particle->cardinality = Loosen(particle->cardinality);
  for (ContentParticle& child : particle->children) {
    LoosenParticle(&child);
  }
}

}  // namespace

xml::Dtd LoosenDtd(const xml::Dtd& dtd) {
  xml::Dtd out = dtd;  // Entities / notations / name copied as-is.

  // Content models: make every particle optional.  (A choice group with
  // optional members already accepts the empty sequence once its own
  // cardinality is `?`/`*`; loosening members too is harmless and keeps
  // the transformation purely local.)
  xml::Dtd rebuilt;
  rebuilt.set_name(out.name());
  for (const auto& [name, decl] : out.elements()) {
    xml::ElementDecl loosened = decl;
    if (loosened.particle.has_value()) {
      LoosenParticle(&*loosened.particle);
    }
    Status s = rebuilt.AddElementDecl(std::move(loosened));
    (void)s;  // Source DTD had unique declarations.
  }
  for (const auto& [element, attrs] : out.attlists()) {
    for (const AttrDecl& attr : attrs) {
      AttrDecl loosened = attr;
      if (loosened.default_kind == AttrDefaultKind::kRequired) {
        loosened.default_kind = AttrDefaultKind::kImplied;
      }
      rebuilt.AddAttrDecl(element, std::move(loosened));
    }
  }
  for (const auto& [name, entity] : out.general_entities()) {
    rebuilt.AddEntity(entity);
  }
  for (const auto& [name, entity] : out.parameter_entities()) {
    rebuilt.AddEntity(entity);
  }
  for (const auto& [name, notation] : out.notations()) {
    Status s = rebuilt.AddNotation(notation);
    (void)s;
  }
  return rebuilt;
}

}  // namespace authz
}  // namespace xmlsec
