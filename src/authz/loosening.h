#ifndef XMLSEC_AUTHZ_LOOSENING_H_
#define XMLSEC_AUTHZ_LOOSENING_H_

#include "xml/dtd.h"

namespace xmlsec {
namespace authz {

/// The paper's DTD *loosening* transformation (§6.2): every construct
/// that makes content mandatory becomes optional, so that any pruned view
/// of a valid document is valid with respect to the loosened DTD and a
/// requester cannot tell protected data from absent data.
///
/// Concretely: `#REQUIRED` attributes become `#IMPLIED`; in element
/// content models the occurrence indicators map `1 → ?` and `+ → *`
/// (recursively through sequence/choice groups).  Entity, notation, and
/// enumeration declarations are preserved unchanged.
xml::Dtd LoosenDtd(const xml::Dtd& dtd);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_LOOSENING_H_
