#ifndef XMLSEC_AUTHZ_POLICY_H_
#define XMLSEC_AUTHZ_POLICY_H_

#include <string_view>

namespace xmlsec {
namespace authz {

/// How conflicts between authorizations with *uncomparable* subjects are
/// resolved, after "most specific subject takes precedence" has been
/// applied (paper §5).  The paper's reference configuration is
/// kDenialsTakePrecedence; the others are supported as alternative
/// policies for the multiple-policy scenario of [11].
enum class ConflictPolicy {
  kDenialsTakePrecedence,      ///< any remaining '-' wins
  kPermissionsTakePrecedence,  ///< any remaining '+' wins
  kNothingTakesPrecedence,     ///< unresolved conflict => no authorization
};

/// Interpretation of nodes with no (derived) authorization after
/// labeling (paper §6.2): closed denies, open permits.
enum class CompletenessPolicy {
  kClosed,
  kOpen,
};

/// Per-document policy configuration.  The paper allows different
/// policies on the same server but exactly one per document.
struct PolicyOptions {
  ConflictPolicy conflict = ConflictPolicy::kDenialsTakePrecedence;
  CompletenessPolicy completeness = CompletenessPolicy::kClosed;
  /// Which action's authorizations the labeling considers.  Read views
  /// use kRead (0); the update processor labels with kWrite (1).
  /// (Declared as int to avoid a circular include with
  /// authorization.h; values match `authz::Action`.)
  int action = 0;
};

std::string_view ConflictPolicyToString(ConflictPolicy policy);
std::string_view CompletenessPolicyToString(CompletenessPolicy policy);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_POLICY_H_
