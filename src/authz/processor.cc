#include "authz/processor.h"

#include <chrono>

#include "authz/loosening.h"
#include "authz/projector.h"
#include "common/failpoint.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {

namespace {

using StageClock = std::chrono::steady_clock;

int64_t NsSince(StageClock::time_point begin) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             StageClock::now() - begin)
      .count();
}

}  // namespace

Result<View> SecurityProcessor::ComputeView(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq) const {
  return ComputeView(doc, instance_auths, schema_auths, rq, nullptr);
}

Result<View> SecurityProcessor::ComputeView(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const ExplicitSignEngine* engine) const {
  // Fault-injection site: a fault inside labeling/projection must abort
  // the whole view computation (fail closed) — a partially labeled tree
  // must never escape as a served view.
  XMLSEC_RETURN_IF_ERROR(failpoint::Check("authz.compute_view"));
  for (const Authorization& auth : schema_auths) {
    if (IsWeak(auth.type)) {
      return Status::InvalidArgument(
          "schema-level authorization " + auth.ToString() +
          " is declared weak; weakness applies only at instance level");
    }
  }

  View view;
  std::unique_ptr<xml::Document> view_doc;

  if (options_.pipeline == ViewPipeline::kProject) {
    bool projected_compiled = false;
    bool compiled_fallback = false;
    if (options_.labeling == LabelingMode::kCompiled && engine != nullptr) {
      // Compiled path: explicit signs come from the policy automaton's
      // table rows (plus XPath for the residual authorizations), then
      // the same fused propagate-and-copy walk — byte-identical views
      // by construction.
      StageClock::time_point stage_begin = StageClock::now();
      bool schema_mismatch = false;
      XMLSEC_ASSIGN_OR_RETURN(
          ExplicitSigns signs,
          engine->ComputeSigns(doc, rq, *groups_, options_.policy,
                               &view.stats.labeling, &schema_mismatch));
      if (schema_mismatch) {
        // The document does not conform to the schema the automaton was
        // compiled from: discard and serve through the XPath path.
        view.stats.labeling = LabelingStats{};
        compiled_fallback = true;
      } else {
        view.stats.label_ns = NsSince(stage_begin);
        stage_begin = StageClock::now();
        XMLSEC_ASSIGN_OR_RETURN(
            view_doc, ProjectWithSigns(doc, signs,
                                       options_.policy.completeness,
                                       &view.stats.prune));
        view.stats.project_ns = NsSince(stage_begin);
        projected_compiled = true;
      }
    }
    if (!projected_compiled) {
      // Single-pass projection over the shared original (projector.h):
      // explicit signs, then one fused propagate-and-copy walk.
      ProjectionStats pstats;
      XMLSEC_ASSIGN_OR_RETURN(
          view_doc, ProjectView(doc, instance_auths, schema_auths, rq,
                                *groups_, options_.policy, &pstats));
      view.stats.labeling = pstats.labeling;
      view.stats.prune = pstats.prune;
      view.stats.label_ns = pstats.label_ns;
      view.stats.project_ns = pstats.project_ns;
      if (compiled_fallback) view.stats.labeling.compiled_fallbacks = 1;
    }
  } else {
    // Paper-literal pipeline: work on a clone so the cached original
    // stays intact, label it, prune it back down.
    StageClock::time_point stage_begin = StageClock::now();
    std::unique_ptr<xml::Node> cloned = doc.Clone(/*deep=*/true);
    view_doc = std::unique_ptr<xml::Document>(
        static_cast<xml::Document*>(cloned.release()));
    view.stats.project_ns = NsSince(stage_begin);

    stage_begin = StageClock::now();
    TreeLabeler labeler(groups_, options_.policy);
    XMLSEC_ASSIGN_OR_RETURN(
        LabelMap labels,
        labeler.Label(*view_doc, instance_auths, schema_auths, rq,
                      &view.stats.labeling));
    view.stats.label_ns = NsSince(stage_begin);

    stage_begin = StageClock::now();
    PruneDocument(view_doc.get(), labels, options_.policy.completeness,
                  &view.stats.prune);
    view.stats.prune_ns = NsSince(stage_begin);
  }

  // Attach the loosened DTD so the published view hides redactions.
  // (The projection pipeline never copied the original DTD at all; the
  // clone pipeline replaces the copy its clone carried.)
  StageClock::time_point stage_begin = StageClock::now();
  if (doc.dtd() != nullptr) {
    view_doc->set_dtd(std::make_unique<xml::Dtd>(LoosenDtd(*doc.dtd())));
    if (options_.validate_output && view_doc->root() != nullptr) {
      xml::ValidationOptions vopts;
      vopts.add_default_attributes = false;  // Do not re-add pruned attrs.
      xml::Validator validator(view_doc->dtd(), vopts);
      XMLSEC_RETURN_IF_ERROR(validator.Validate(view_doc.get()));
    }
  }
  view.stats.loosen_ns = NsSince(stage_begin);

  view.document = std::move(view_doc);
  return view;
}

}  // namespace authz
}  // namespace xmlsec
