#ifndef XMLSEC_AUTHZ_PRUNE_H_
#define XMLSEC_AUTHZ_PRUNE_H_

#include <cstdint>

#include "authz/labeling.h"
#include "authz/policy.h"
#include "xml/dom.h"

namespace xmlsec {
namespace authz {

/// Counters from one prune pass.
struct PruneStats {
  int64_t nodes_before = 0;
  int64_t nodes_after = 0;
  int64_t removed_elements = 0;
  int64_t removed_attributes = 0;
  int64_t removed_character_data = 0;
  /// Elements kept only as structure (their own sign is not '+', but a
  /// descendant's is) — the paper's tag-skeleton preservation.
  int64_t skeleton_elements = 0;
};

/// The paper's `prune` procedure (Fig. 2): post-order removal of every
/// subtree containing no permitted node.  Under the closed policy a node
/// is permitted iff its final sign is '+'; under the open policy, iff it
/// is not '-'.  Start/end tags of non-permitted elements with permitted
/// descendants are preserved to retain document structure.
///
/// Mutates `doc` (the security processor works on a clone) and reindexes
/// it afterwards.
void PruneDocument(xml::Document* doc, const LabelMap& labels,
                   CompletenessPolicy completeness,
                   PruneStats* stats = nullptr);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_PRUNE_H_
