#ifndef XMLSEC_AUTHZ_PROJECTOR_H_
#define XMLSEC_AUTHZ_PROJECTOR_H_

#include <cstdint>
#include <memory>
#include <span>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/prune.h"
#include "authz/subject.h"
#include "xml/dom.h"

namespace xmlsec {
namespace authz {

/// Metrics of one projection run.  `labeling`/`prune` carry the same
/// counters as the clone→label→prune pipeline (the projector emulates
/// the pruner's bookkeeping exactly, so dashboards and the audit trail
/// are pipeline-agnostic).
struct ProjectionStats {
  LabelingStats labeling;
  PruneStats prune;
  /// Explicit-sign computation (XPath target marking + conflict
  /// resolution) — the analogue of the labeler's up-front work.
  int64_t label_ns = 0;
  /// The fused propagate-and-copy walk.
  int64_t project_ns = 0;
};

/// Single-pass view projection (the compute-view of paper §6/Fig. 2
/// without materializing the full document).
///
/// One pre-order walk over the *original* — immutable, shared — document
/// evaluates the 6-tuple labeling in place (identical propagation rules
/// to `TreeLabeler`) and copies into a fresh output document only:
///
///   * nodes whose final sign is permitted under `policy.completeness`,
///   * the tag skeleton of denied elements with a permitted descendant
///     or attribute (the paper's structure preservation), and
///   * the document metadata (XML declaration, DOCTYPE identifiers).
///
/// The output is byte-identical, once serialized, to what
/// `Clone` + `TreeLabeler` + `PruneDocument` produce (asserted by
/// `view_projection_test` over randomized workloads), but a deny-heavy
/// request allocates only its visible slice instead of the whole tree,
/// and the three traversals collapse into one.
///
/// The attached DTD is NOT copied — the caller (SecurityProcessor)
/// attaches the loosened DTD it derives from the original, which the
/// legacy pipeline computed from the clone's identical copy anyway.
///
/// Fails with InvalidArgument when the document has no root element
/// (mirrors `TreeLabeler::Label`).
Result<std::unique_ptr<xml::Document>> ProjectView(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy,
    ProjectionStats* stats = nullptr);

/// The fused propagate-and-copy walk alone, over precomputed explicit
/// signs.  `ProjectView` is `ComputeExplicitSigns` followed by this; the
/// compiled labeling path (`ProcessorOptions::labeling = kCompiled`)
/// substitutes automaton table lookups for the first half and reuses
/// this walk unchanged, which is what makes its views byte-identical to
/// the XPath pipelines by construction.  Fills `stats` (when given) with
/// the pruner-compatible counters, including `nodes_before`/`nodes_after`.
Result<std::unique_ptr<xml::Document>> ProjectWithSigns(
    const xml::Document& doc, const ExplicitSigns& initial,
    CompletenessPolicy completeness, PruneStats* stats = nullptr);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_PROJECTOR_H_
