#ifndef XMLSEC_AUTHZ_EXPLAIN_H_
#define XMLSEC_AUTHZ_EXPLAIN_H_

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "xml/dom.h"

namespace xmlsec {
namespace authz {

/// Human-readable name of a 6-tuple slot (the enum itself lives in
/// labeling.h, shared with the projector).
const char* LabelSlotName(LabelSlot slot);

/// Why one slot of one node carries its sign.
struct SlotExplanation {
  TriSign sign = TriSign::kEps;
  /// Authorizations that produced the sign (after most-specific-subject
  /// filtering and conflict resolution).
  std::vector<const Authorization*> winning;
  /// Applicable authorizations dropped because a strictly more specific
  /// subject also applies.
  std::vector<const Authorization*> overridden;
};

/// Full provenance of one node's final sign — the answer to "why can('t)
/// this requester see this node?".
struct NodeExplanation {
  TriSign final_sign = TriSign::kEps;
  /// The slot whose sign won (meaningless when final_sign is ε).
  LabelSlot winning_slot = LabelSlot::kL;
  /// For inherited recursive signs: the ancestor element carrying the
  /// explicit authorization; nullptr when the sign is explicit on the
  /// node (or final_sign is ε).
  const xml::Node* inherited_from = nullptr;
  /// Per-slot detail for the *explicit* authorizations on this node.
  std::array<SlotExplanation, 6> slots;

  /// Human-readable multi-line report.
  std::string ToString() const;
};

/// Explains the final sign of `node` for requester `rq` under the given
/// authorization sets — same semantics as `TreeLabeler` (verified
/// equivalent by the differential property tests of the naive labeler,
/// which this shares its resolution logic with).
///
/// `node` must be an element or attribute of `doc`.
Result<NodeExplanation> ExplainNode(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, const xml::Node* node);

/// Convenience: explanation rendered as text for the node selected by
/// `path` (must select exactly one element/attribute).
Result<std::string> ExplainPath(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, std::string_view path);

}  // namespace authz
}  // namespace xmlsec

#endif  // XMLSEC_AUTHZ_EXPLAIN_H_
