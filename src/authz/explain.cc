#include "authz/explain.h"

#include <map>

#include "xpath/evaluator.h"

namespace xmlsec {
namespace authz {

namespace {

using xml::Element;
using xml::Node;

const char* kSlotNames[6] = {"L", "R", "LD", "RD", "LW", "RW"};

/// Applicable-authorization candidates per (node, slot) for the nodes of
/// interest (the target node and its element ancestors).
using CandidateMap =
    std::map<std::pair<const Node*, int>, std::vector<const Authorization*>>;

int SlotIndexFor(const Authorization& auth, bool schema_level,
                 bool target_is_attribute) {
  bool recursive = IsRecursive(auth.type);
  if (target_is_attribute) recursive = false;
  if (schema_level) return recursive ? 3 : 2;          // RD : LD
  if (IsWeak(auth.type)) return recursive ? 5 : 4;     // RW : LW
  return recursive ? 1 : 0;                            // R : L
}

SlotExplanation ResolveSlotExplained(
    const std::vector<const Authorization*>& candidates,
    const GroupStore& groups, ConflictPolicy policy) {
  SlotExplanation out;
  bool any_plus = false;
  bool any_minus = false;
  for (const Authorization* a : candidates) {
    bool overridden = false;
    for (const Authorization* b : candidates) {
      if (a != b && SubjectLess(b->subject, a->subject, groups)) {
        overridden = true;
        break;
      }
    }
    if (overridden) {
      out.overridden.push_back(a);
      continue;
    }
    out.winning.push_back(a);
    (a->sign == Sign::kPlus ? any_plus : any_minus) = true;
  }
  if (!any_plus && !any_minus) {
    out.sign = TriSign::kEps;
    out.winning.clear();
    return out;
  }
  switch (policy) {
    case ConflictPolicy::kDenialsTakePrecedence:
      out.sign = any_minus ? TriSign::kMinus : TriSign::kPlus;
      break;
    case ConflictPolicy::kPermissionsTakePrecedence:
      out.sign = any_plus ? TriSign::kPlus : TriSign::kMinus;
      break;
    case ConflictPolicy::kNothingTakesPrecedence:
      out.sign = (any_plus && any_minus) ? TriSign::kEps
                 : any_plus              ? TriSign::kPlus
                                         : TriSign::kMinus;
      break;
  }
  return out;
}

std::string NodePathOf(const Node* node) {
  if (node == nullptr) return "(none)";
  std::vector<std::string> parts;
  const Node* cur = node;
  if (cur->IsAttribute()) {
    parts.push_back("@" + cur->NodeName());
    cur = cur->parent();
  }
  for (; cur != nullptr && cur->IsElement(); cur = cur->parent()) {
    parts.push_back(cur->NodeName());
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += "/" + *it;
  }
  return out.empty() ? "/" : out;
}

}  // namespace

const char* LabelSlotName(LabelSlot slot) {
  return kSlotNames[static_cast<int>(slot)];
}

std::string NodeExplanation::ToString() const {
  std::string out = "final sign: ";
  out.push_back(TriSignToChar(final_sign));
  out.push_back('\n');
  if (final_sign != TriSign::kEps) {
    out += "decided by slot ";
    out += LabelSlotName(winning_slot);
    if (inherited_from != nullptr) {
      out += ", inherited from " + NodePathOf(inherited_from);
    } else {
      out += " (explicit on the node)";
    }
    out.push_back('\n');
  } else {
    out += "no authorization applies (completeness policy decides)\n";
  }
  for (int i = 0; i < 6; ++i) {
    const SlotExplanation& slot = slots[static_cast<size_t>(i)];
    if (slot.sign == TriSign::kEps && slot.winning.empty() &&
        slot.overridden.empty()) {
      continue;
    }
    out += "  ";
    out += kSlotNames[i];
    out += " = ";
    out.push_back(TriSignToChar(slot.sign));
    out.push_back('\n');
    for (const Authorization* a : slot.winning) {
      out += "    by " + a->ToString() + "\n";
    }
    for (const Authorization* a : slot.overridden) {
      out += "    overridden (less specific subject): " + a->ToString() +
             "\n";
    }
  }
  return out;
}

Result<NodeExplanation> ExplainNode(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, const Node* node) {
  if (node == nullptr || (!node->IsElement() && !node->IsAttribute())) {
    return Status::InvalidArgument(
        "explanations cover elements and attributes");
  }

  // Nodes whose explicit labels matter: the node and its element chain.
  std::vector<const Node*> chain;
  for (const Node* cur = node; cur != nullptr; cur = cur->parent()) {
    if (cur->IsElement() || cur->IsAttribute()) chain.push_back(cur);
  }

  xpath::VariableBindings vars;
  vars.emplace("user", xpath::Value(rq.user));
  vars.emplace("ip", xpath::Value(rq.ip));
  vars.emplace("sym", xpath::Value(rq.sym));
  vars.emplace("time", xpath::Value(static_cast<double>(rq.time)));

  CandidateMap candidates;
  auto collect = [&](std::span<const Authorization> auths,
                     bool schema_level) -> Status {
    for (const Authorization& auth : auths) {
      if (static_cast<int>(auth.action) != policy.action) continue;
      if (!auth.AppliesAtTime(rq.time)) continue;
      if (!RequesterMatches(rq, auth.subject, groups)) continue;
      xpath::NodeSet targets;
      if (auth.object.path.empty()) {
        targets.push_back(doc.root());
      } else {
        XMLSEC_ASSIGN_OR_RETURN(
            targets, xpath::SelectXPath(auth.object.path, doc.root(), &vars));
      }
      for (const Node* target : targets) {
        if (target->type() == xml::NodeType::kDocument) target = doc.root();
        for (const Node* interesting : chain) {
          if (target == interesting) {
            int slot =
                SlotIndexFor(auth, schema_level, target->IsAttribute());
            candidates[{target, slot}].push_back(&auth);
          }
        }
      }
    }
    return Status::OK();
  };
  XMLSEC_RETURN_IF_ERROR(collect(instance_auths, false));
  XMLSEC_RETURN_IF_ERROR(collect(schema_auths, true));

  auto slot_of = [&](const Node* n, int slot) {
    auto it = candidates.find({n, slot});
    if (it == candidates.end()) return SlotExplanation{};
    return ResolveSlotExplained(it->second, groups, policy.conflict);
  };

  NodeExplanation out;
  for (int i = 0; i < 6; ++i) {
    out.slots[static_cast<size_t>(i)] = slot_of(node, i);
  }

  // Recursive-slot inheritance, mirroring the naive labeler.
  const Element* start =
      node->IsAttribute() ? node->ParentElement() : node->AsElement();
  auto walk_pair = [&](TriSign* r, TriSign* rw, const Node** source) {
    *r = TriSign::kEps;
    *rw = TriSign::kEps;
    *source = nullptr;
    for (const Node* m = start; m != nullptr && m->IsElement();
         m = m->parent()) {
      TriSign mr = slot_of(m, 1).sign;
      TriSign mrw = slot_of(m, 5).sign;
      if (mr != TriSign::kEps || mrw != TriSign::kEps) {
        *r = mr;
        *rw = mrw;
        *source = m;
        return;
      }
    }
  };
  auto walk_rd = [&](const Node** source) {
    *source = nullptr;
    for (const Node* m = start; m != nullptr && m->IsElement();
         m = m->parent()) {
      TriSign mrd = slot_of(m, 3).sign;
      if (mrd != TriSign::kEps) {
        *source = m;
        return mrd;
      }
    }
    return TriSign::kEps;
  };

  TriSign r;
  TriSign rw;
  const Node* r_source;
  walk_pair(&r, &rw, &r_source);
  const Node* rd_source;
  TriSign rd = walk_rd(&rd_source);

  struct Entry {
    LabelSlot slot;
    TriSign sign;
    const Node* source;  // nullptr = explicit on the node
  };
  std::vector<Entry> sequence;
  if (node->IsElement()) {
    sequence = {
        {LabelSlot::kL, slot_of(node, 0).sign, nullptr},
        {LabelSlot::kR, r, r_source == node ? nullptr : r_source},
        {LabelSlot::kLD, slot_of(node, 2).sign, nullptr},
        {LabelSlot::kRD, rd, rd_source == node ? nullptr : rd_source},
        {LabelSlot::kLW, slot_of(node, 4).sign, nullptr},
        {LabelSlot::kRW, rw, r_source == node ? nullptr : r_source},
    };
  } else {
    const Element* p = start;
    TriSign inst = slot_of(p, 0).sign != TriSign::kEps ? slot_of(p, 0).sign
                                                       : r;
    const Node* inst_src = slot_of(p, 0).sign != TriSign::kEps
                               ? static_cast<const Node*>(p)
                               : r_source;
    TriSign schema = slot_of(p, 2).sign != TriSign::kEps
                         ? slot_of(p, 2).sign
                         : rd;
    const Node* schema_src = slot_of(p, 2).sign != TriSign::kEps
                                 ? static_cast<const Node*>(p)
                                 : rd_source;
    TriSign weak = slot_of(p, 4).sign != TriSign::kEps ? slot_of(p, 4).sign
                                                       : rw;
    const Node* weak_src = slot_of(p, 4).sign != TriSign::kEps
                               ? static_cast<const Node*>(p)
                               : r_source;
    sequence = {
        {LabelSlot::kL, slot_of(node, 0).sign, nullptr},
        {LabelSlot::kR, inst, inst_src},
        {LabelSlot::kLD, slot_of(node, 2).sign, nullptr},
        {LabelSlot::kRD, schema, schema_src},
        {LabelSlot::kLW, slot_of(node, 4).sign, nullptr},
        {LabelSlot::kRW, weak, weak_src},
    };
  }

  for (const Entry& entry : sequence) {
    if (entry.sign != TriSign::kEps) {
      out.final_sign = entry.sign;
      out.winning_slot = entry.slot;
      out.inherited_from = entry.source;
      break;
    }
  }
  return out;
}

Result<std::string> ExplainPath(
    const xml::Document& doc, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths, const Requester& rq,
    const GroupStore& groups, PolicyOptions policy, std::string_view path) {
  XMLSEC_ASSIGN_OR_RETURN(xpath::NodeSet nodes,
                          xpath::SelectXPath(path, doc.root()));
  if (nodes.size() != 1) {
    return Status::InvalidArgument("explain path '" + std::string(path) +
                                   "' selects " +
                                   std::to_string(nodes.size()) +
                                   " node(s), expected exactly 1");
  }
  XMLSEC_ASSIGN_OR_RETURN(NodeExplanation explanation,
                          ExplainNode(doc, instance_auths, schema_auths, rq,
                                      groups, policy, nodes.front()));
  return NodePathOf(nodes.front()) + "\n" + explanation.ToString();
}

}  // namespace authz
}  // namespace xmlsec
