#include "server/audit_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace xmlsec {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Frame header: little-endian u32 payload length + u32 CRC32(payload).
constexpr size_t kHeaderBytes = 8;
/// Sanity cap on a single frame; a length field above this is treated
/// as corruption (prevents a flipped bit from provoking a giant read).
constexpr uint32_t kMaxFrameBytes = 16u << 20;

void PutU32(unsigned char* out, uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xff);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xff);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xff);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xff);
}

uint32_t GetU32(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// EINTR-safe full write.
bool WriteAllFd(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

/// EINTR-safe pread of exactly `size` bytes; false on short read.
bool ReadExactAt(int fd, void* data, size_t size, uint64_t offset) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd, p + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Scans frames from offset 0; shared by Open (recovery) and Verify.
AuditWal::VerifyReport ScanFrames(int fd, uint64_t file_bytes,
                                  std::vector<std::string>* payloads) {
  AuditWal::VerifyReport report;
  report.file_bytes = file_bytes;
  uint64_t offset = 0;
  std::string payload;
  while (offset + kHeaderBytes <= file_bytes) {
    unsigned char header[kHeaderBytes];
    if (!ReadExactAt(fd, header, sizeof(header), offset)) break;
    const uint32_t length = GetU32(header);
    const uint32_t stored_crc = GetU32(header + 4);
    if (length > kMaxFrameBytes) {
      report.crc_mismatch = true;  // Implausible length: corruption.
      break;
    }
    if (offset + kHeaderBytes + length > file_bytes) break;  // Short tail.
    payload.resize(length);
    if (length > 0 &&
        !ReadExactAt(fd, payload.data(), length, offset + kHeaderBytes)) {
      break;
    }
    if (Crc32(payload) != stored_crc) {
      report.crc_mismatch = true;
      break;
    }
    ++report.frames;
    report.payload_bytes += length;
    offset += kHeaderBytes + length;
    if (payloads != nullptr) payloads->push_back(payload);
  }
  report.valid_bytes = offset;
  return report;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  // Table-driven IEEE CRC-32 (polynomial 0xEDB88320), computed once.
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      (*t)[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = (*table)[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

AuditWal::~AuditWal() { Close(); }

Status AuditWal::Open(std::string path, Options options,
                      VerifyReport* report) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0 || writer_.joinable()) {
    return Status::InvalidArgument("audit WAL already open");
  }
  if (options.rotate_bytes == 0) options.rotate_bytes = 1;
  if (options.max_rotated_files < 0) options.max_rotated_files = 0;
  if (options.queue_limit == 0) options.queue_limit = 1;
  if (options.fsync_interval_ms < 0) options.fsync_interval_ms = 0;
  if (options.fsync_batch_frames == 0) options.fsync_batch_frames = 1;

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open audit WAL '" + path +
                            "': " + strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::Internal("cannot size audit WAL '" + path + "'");
  }
  // Crash recovery: find the last intact frame and cut the torn tail
  // (a partial frame from a write interrupted by the crash) so every
  // byte past Open() is a verified prefix of history.
  VerifyReport scan =
      ScanFrames(fd, static_cast<uint64_t>(end), /*payloads=*/nullptr);
  if (!scan.clean()) {
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      ::close(fd);
      return Status::Internal("cannot truncate torn audit WAL tail of '" +
                              path + "'");
    }
  }
  if (report != nullptr) *report = scan;
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::Internal("cannot seek audit WAL '" + path + "'");
  }

  fd_ = fd;
  path_ = std::move(path);
  options_ = options;
  file_bytes_ = scan.valid_bytes;
  next_seq_ = 0;
  durable_seq_ = 0;
  failed_seq_ = 0;
  stop_ = false;
  crash_ = false;
  healthy_.store(true, std::memory_order_relaxed);
  if (metric_degraded_ != nullptr) metric_degraded_->Set(0);
  writer_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

void AuditWal::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 && !writer_.joinable()) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  queue_.clear();
  if (metric_queue_depth_ != nullptr) metric_queue_depth_->Set(0);
  ack_cv_.notify_all();
}

bool AuditWal::open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ >= 0 || writer_.joinable();
}

Result<uint64_t> AuditWal::Append(std::string payload) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || fd_ < 0) {
      sink_failures_.fetch_add(1, std::memory_order_relaxed);
      if (metric_failures_ != nullptr) metric_failures_->Inc();
      return Status::Internal("audit WAL is closed");
    }
    if (queue_.size() >= options_.queue_limit) {
      // Bounded queue: refusing the record (and telling the caller) is
      // the fail-closed move; silently dropping it would break the
      // audit-completeness guarantee invisibly.
      sink_failures_.fetch_add(1, std::memory_order_relaxed);
      if (metric_failures_ != nullptr) metric_failures_->Inc();
      return Status::Internal("audit WAL queue full (" +
                              std::to_string(options_.queue_limit) + ")");
    }
    seq = ++next_seq_;
    queue_.emplace_back(seq, std::move(payload));
    if (metric_queue_depth_ != nullptr) {
      metric_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();
  return seq;
}

Status AuditWal::WaitDurable(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  waiter_pending_ = true;
  work_cv_.notify_one();  // Prompt commit: a waiter shortens the window.
  ack_cv_.wait(lock, [&] {
    return durable_seq_ >= seq || failed_seq_ >= seq ||
           (stop_ && !writer_.joinable());
  });
  waiter_pending_ = false;
  // A frame can be both past the durable watermark and inside a failed
  // batch (the watermark advances over failed ranges so later waiters
  // are never stuck); failure wins — the caller must not treat a
  // dropped record as durable.
  if (failed_seq_ >= seq) {
    return Status::Internal("audit WAL frame " + std::to_string(seq) +
                            " was dropped by a sink failure");
  }
  if (durable_seq_ >= seq) return Status::OK();
  return Status::Internal("audit WAL closed before frame " +
                          std::to_string(seq) + " committed");
}

Status AuditWal::Flush() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target = next_seq_;
  }
  if (target == 0) return Status::OK();
  return WaitDurable(target);
}

size_t AuditWal::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void AuditWal::BindMetrics(obs::Gauge* queue_depth, obs::Counter* fsyncs,
                           obs::Counter* sink_failures,
                           obs::Gauge* degraded) {
  std::lock_guard<std::mutex> lock(mutex_);
  metric_queue_depth_ = queue_depth;
  metric_fsyncs_ = fsyncs;
  metric_failures_ = sink_failures;
  metric_degraded_ = degraded;
  if (metric_degraded_ != nullptr) {
    metric_degraded_->Set(healthy_.load(std::memory_order_relaxed) ? 0 : 1);
  }
}

void AuditWal::CrashForTest(size_t torn_bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    crash_ = true;
    queue_.clear();  // Unwritten frames die with the "process".
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);  // No fsync: whatever the kernel kept is what survives.
    fd_ = -1;
  }
  if (torn_bytes > 0) {
    // Fabricate the on-disk residue of a frame write cut mid-flight: a
    // header promising more payload than follows (or, under 8 bytes, a
    // header that itself is short).
    int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
    if (fd >= 0) {
      std::string torn(torn_bytes, '\xAB');
      if (torn_bytes >= kHeaderBytes) {
        PutU32(reinterpret_cast<unsigned char*>(torn.data()),
               kMaxFrameBytes - 1);  // Plausible length, payload missing.
        PutU32(reinterpret_cast<unsigned char*>(torn.data()) + 4,
               0xDEADBEEFu);
      }
      WriteAllFd(fd, torn.data(), torn.size());
      ::close(fd);
    }
  }
  ack_cv_.notify_all();
}

Result<AuditWal::VerifyReport> AuditWal::Verify(
    const std::string& path, std::vector<std::string>* payloads) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open audit WAL '" + path +
                            "': " + strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::Internal("cannot size audit WAL '" + path + "'");
  }
  VerifyReport report = ScanFrames(fd, static_cast<uint64_t>(end), payloads);
  ::close(fd);
  return report;
}

bool AuditWal::Rotate() {
  // Rotation is a commit point: the outgoing generation must be fully
  // durable before it is renamed out from under the live path.
  if (::fsync(fd_) != 0) return false;
  ::close(fd_);
  fd_ = -1;
  const int keep = options_.max_rotated_files;
  if (keep > 0) {
    std::string oldest = path_ + "." + std::to_string(keep);
    std::remove(oldest.c_str());
    for (int i = keep - 1; i >= 1; --i) {
      std::string from = path_ + "." + std::to_string(i);
      std::string to = path_ + "." + std::to_string(i + 1);
      std::rename(from.c_str(), to.c_str());  // Missing generations: no-op.
    }
    std::rename(path_.c_str(), (path_ + ".1").c_str());
  } else {
    std::remove(path_.c_str());
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  file_bytes_ = 0;
  return fd_ >= 0;
}

void AuditWal::SetHealthy(bool healthy) {
  bool was = healthy_.exchange(healthy, std::memory_order_relaxed);
  if (was != healthy && metric_degraded_ != nullptr) {
    metric_degraded_->Set(healthy ? 0 : 1);
  }
}

void AuditWal::NoteFailure(int64_t failed_operations) {
  sink_failures_.fetch_add(failed_operations, std::memory_order_relaxed);
  if (metric_failures_ != nullptr) metric_failures_->Inc(failed_operations);
  SetHealthy(false);
}

void AuditWal::WriterLoop() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  std::string chunk;             // Reused frame buffer: one write per batch.
  uint64_t written_seq = 0;      // Highest frame written to the fd.
  size_t uncommitted_frames = 0;
  auto window_start = Clock::now();

  auto commit = [&](std::unique_lock<std::mutex>& lock) {
    // Group commit: one fsync acknowledges every frame written since
    // the previous one.  Called with the lock HELD; drops it for the
    // syscall so appenders never stall behind the disk.
    const uint64_t target = written_seq;
    lock.unlock();
    bool ok = !failpoint::ShouldFail("audit.wal_fsync") &&
              fd_ >= 0 && ::fsync(fd_) == 0;
    lock.lock();
    if (ok) {
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
      if (metric_fsyncs_ != nullptr) metric_fsyncs_->Inc();
      if (target > durable_seq_) durable_seq_ = target;
      SetHealthy(true);
    } else {
      // The frames were written but their durability is unknown; report
      // them failed (conservative) and advance the watermark so later
      // waiters do not hang behind the failed window.
      NoteFailure(static_cast<int64_t>(uncommitted_frames == 0
                                           ? 1
                                           : uncommitted_frames));
      if (target > failed_seq_) failed_seq_ = target;
      if (target > durable_seq_) durable_seq_ = target;
    }
    uncommitted_frames = 0;
    window_start = Clock::now();
    ack_cv_.notify_all();
  };

  std::unique_lock<std::mutex> lock(mutex_);
  // Frames below the batch threshold are not urgent on their own: the
  // writer lets the group-commit window fill so concurrent appenders
  // share one write and one fsync.  Waiters and shutdown always break
  // the pause.
  auto urgent = [&] {
    return stop_ || waiter_pending_ ||
           queue_.size() >= options_.fsync_batch_frames;
  };
  for (;;) {
    if (queue_.empty() && !stop_) {
      if (uncommitted_frames == 0) {
        work_cv_.wait(lock, [&] {
          return stop_ || !queue_.empty() || waiter_pending_;
        });
        if (!urgent()) {
          window_start = Clock::now();
          work_cv_.wait_until(
              lock,
              window_start +
                  std::chrono::milliseconds(options_.fsync_interval_ms),
              urgent);
        }
      } else {
        // Frames are written but not yet fsynced: sleep at most to the
        // end of the group-commit window.
        work_cv_.wait_until(
            lock,
            window_start +
                std::chrono::milliseconds(options_.fsync_interval_ms),
            urgent);
        if (queue_.empty() && !stop_) {
          const bool window_over =
              Clock::now() - window_start >=
              std::chrono::milliseconds(options_.fsync_interval_ms);
          if (window_over || waiter_pending_) commit(lock);
          continue;
        }
      }
      if (queue_.empty() && waiter_pending_ && uncommitted_frames == 0 &&
          !stop_) {
        // Spurious waiter wake with nothing pending: the waiter's frame
        // is either already resolved or still queued elsewhere.
        ack_cv_.notify_all();
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      }
    }
    if (stop_ && queue_.empty()) break;

    batch.clear();
    while (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (metric_queue_depth_ != nullptr) metric_queue_depth_->Set(0);
    const bool want_prompt_commit = waiter_pending_ || stop_;
    lock.unlock();

    // --- File I/O, outside the lock ------------------------------------
    // Frames are serialized into `chunk` and hit the kernel as ONE
    // write per batch (amortizing syscalls across concurrent
    // appenders); the buffer is flushed early only at a rotation
    // boundary or an injected fault.
    bool failed = false;
    uint64_t last_attempted = written_seq;
    size_t frames_written = 0;
    chunk.clear();
    size_t chunk_frames = 0;
    uint64_t chunk_seq = written_seq;
    auto flush_chunk = [&]() -> bool {
      if (chunk.empty()) return true;
      if (fd_ < 0 || !WriteAllFd(fd_, chunk.data(), chunk.size())) {
        return false;
      }
      file_bytes_ += chunk.size();
      written_seq = chunk_seq;
      frames_written += chunk_frames;
      chunk.clear();
      chunk_frames = 0;
      return true;
    };
    for (auto& [seq, payload] : batch) {
      last_attempted = seq;
      if (failed) continue;  // Drop the rest of the batch on failure.
      if (failpoint::ShouldFail("audit.wal_write")) {
        // Frames buffered before the faulted one still get their write.
        if (!flush_chunk()) chunk.clear();
        failed = true;
        continue;
      }
      if (fd_ >= 0 && file_bytes_ + chunk.size() > 0 &&
          file_bytes_ + chunk.size() + kHeaderBytes + payload.size() >
              options_.rotate_bytes) {
        if (!flush_chunk() || !Rotate()) {
          failed = true;
          continue;
        }
        // Rotation fsynced the old generation: everything written so
        // far is durable.
        lock.lock();
        fsyncs_.fetch_add(1, std::memory_order_relaxed);
        if (metric_fsyncs_ != nullptr) metric_fsyncs_->Inc();
        if (written_seq > durable_seq_) durable_seq_ = written_seq;
        uncommitted_frames = 0;
        ack_cv_.notify_all();
        lock.unlock();
      }
      if (fd_ < 0) {
        failed = true;
        continue;
      }
      unsigned char header[kHeaderBytes];
      PutU32(header, static_cast<uint32_t>(payload.size()));
      PutU32(header + 4, Crc32(payload));
      chunk.append(reinterpret_cast<const char*>(header), kHeaderBytes);
      chunk.append(payload);
      chunk_seq = seq;
      ++chunk_frames;
    }
    if (!failed && !flush_chunk()) failed = true;

    lock.lock();
    uncommitted_frames += frames_written;
    if (failed) {
      NoteFailure(static_cast<int64_t>(batch.size() - frames_written));
      if (last_attempted > failed_seq_) failed_seq_ = last_attempted;
      ack_cv_.notify_all();
    }
    const bool window_over =
        Clock::now() - window_start >=
        std::chrono::milliseconds(options_.fsync_interval_ms);
    if (uncommitted_frames > 0 &&
        (want_prompt_commit || waiter_pending_ || window_over ||
         uncommitted_frames >= options_.fsync_batch_frames)) {
      commit(lock);
    }
    if (failed && uncommitted_frames == 0) {
      // Nothing to fsync, but the failed watermark must still unblock
      // waiters past it.
      if (last_attempted > durable_seq_) durable_seq_ = last_attempted;
      ack_cv_.notify_all();
    }
    if (stop_ && queue_.empty()) break;
  }
  // Final commit so a clean Close() leaves a fully durable log; a
  // simulated crash skips it.
  if (!crash_ && uncommitted_frames > 0) commit(lock);
  ack_cv_.notify_all();
}

}  // namespace server
}  // namespace xmlsec
