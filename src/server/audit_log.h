#ifndef XMLSEC_SERVER_AUDIT_LOG_H_
#define XMLSEC_SERVER_AUDIT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace xmlsec {
namespace server {

/// One access decision, as recorded by the document server.
struct AuditEntry {
  int64_t time = 0;         ///< request time (requester clock)
  std::string user;
  std::string ip;
  std::string sym;
  std::string uri;
  std::string query;        ///< XPath query, when one was made
  int http_status = 0;
  int64_t visible_nodes = 0;
  int64_t total_nodes = 0;
  bool cache_hit = false;
  /// Slow-request span breakdown (`total=..ms auth=..ms label=..ms ...`),
  /// attached by the document server when the request exceeded the
  /// `XMLSEC_TRACE_SLOW_MS` threshold; empty otherwise.  Streaming it
  /// through the audit sink gives operators a per-stage post-mortem of
  /// every slow access without a separate log pipeline.
  std::string trace;

  /// One-line rendering:
  /// `time user@ip(sym) GET uri -> status k/n [hit] trace{...}`.
  std::string ToString() const;
};

/// Bounded in-memory audit trail, thread-safe.  A security server must
/// be able to answer "who saw what, when" — this collects the decisions
/// the enforcement point makes.  Persistence is optional: attach a file
/// sink (`AttachFileSink`) to stream every entry to disk with
/// size-based rotation, so shed/denied requests under fault injection
/// remain auditable after the process exits; or drain programmatically
/// with `TakeAll`.
class AuditLog {
 public:
  /// File-sink knobs.
  struct FileSinkOptions {
    /// Rotate when the current file would exceed this size.
    size_t rotate_bytes = 1 << 20;
    /// Rotated generations kept (`path.1` .. `path.N`); older are
    /// deleted.
    int max_rotated_files = 3;
  };

  /// Keeps at most `capacity` most recent entries.
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  void Record(AuditEntry entry);

  /// Streams every subsequent entry (one `ToString` line each) to
  /// `path`, rotating by size.  The file is opened in append mode so a
  /// restarted server keeps extending its trail.  Replaces any
  /// previously attached sink.
  Status AttachFileSink(std::string path, FileSinkOptions options);
  Status AttachFileSink(std::string path) {
    return AttachFileSink(std::move(path), FileSinkOptions());
  }

  /// Flushes and closes the sink.  Idempotent.
  void DetachFileSink();

  /// Flushes buffered sink output to the OS.
  Status Flush();

  /// Entries that could not be written to the sink (disk full, rotation
  /// failure, ...).  They are still retained in memory.
  int64_t sink_write_failures() const;

  /// Snapshot of the current entries, oldest first.
  std::vector<AuditEntry> Entries() const;

  /// Drains the log (e.g. to flush to durable storage).
  std::vector<AuditEntry> TakeAll();

  size_t size() const;
  int64_t total_recorded() const;

 private:
  /// Rotates `sink_path_` -> `.1` -> `.2` ... and reopens; caller holds
  /// `mutex_`.
  void RotateLocked();

  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<AuditEntry> entries_;
  int64_t total_recorded_ = 0;

  // File sink state (all guarded by mutex_).
  std::FILE* sink_ = nullptr;
  std::string sink_path_;
  FileSinkOptions sink_options_;
  size_t sink_bytes_ = 0;
  int64_t sink_write_failures_ = 0;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_AUDIT_LOG_H_
