#ifndef XMLSEC_SERVER_AUDIT_LOG_H_
#define XMLSEC_SERVER_AUDIT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace xmlsec {
namespace server {

class AuditWal;

/// Acknowledgment level for a durable audit record (the paper's "no
/// audit, no view" guarantee, made explicit per server config):
///
///  * `kEnqueue` — the record is accepted once the WAL's bounded queue
///    holds it; the background writer makes it durable within the
///    group-commit window.  A crash inside that window can lose it.
///  * `kFsync`   — the caller blocks until the frame is fsync-durable;
///    a positive response is only sent for accesses whose audit record
///    survives any subsequent crash.
enum class AuditDurability {
  kEnqueue,
  kFsync,
};

/// One access decision, as recorded by the document server.
struct AuditEntry {
  int64_t time = 0;         ///< request time (requester clock)
  std::string user;
  std::string ip;
  std::string sym;
  std::string uri;
  std::string query;        ///< XPath query, when one was made
  int http_status = 0;
  int64_t visible_nodes = 0;
  int64_t total_nodes = 0;
  bool cache_hit = false;
  /// Slow-request span breakdown (`total=..ms auth=..ms label=..ms ...`),
  /// attached by the document server when the request exceeded the
  /// `XMLSEC_TRACE_SLOW_MS` threshold; empty otherwise.  Streaming it
  /// through the audit sink gives operators a per-stage post-mortem of
  /// every slow access without a separate log pipeline.
  std::string trace;

  /// One-line rendering:
  /// `time user@ip(sym) GET uri -> status k/n [hit] trace{...}`.
  std::string ToString() const;
};

/// Bounded in-memory audit trail, thread-safe.  A security server must
/// be able to answer "who saw what, when" — this collects the decisions
/// the enforcement point makes.  Persistence is layered on top:
///
///  * `AttachFileSink` streams every entry as a text line to disk with
///    size-based rotation (legacy sink; flush-to-OS only, batched).
///  * `AttachWal` routes entries through a crash-safe `AuditWal`
///    (CRC-framed, group-commit fsync); `RecordDurable` then gives the
///    caller real acknowledgment semantics (see `AuditDurability`).
///
/// Locking: entry formatting happens OUTSIDE any lock, the in-memory
/// deque and the file sink are guarded by separate mutexes, and the
/// WAL does its own synchronization — a slow disk never serializes
/// concurrent `Record` calls behind one global critical section.
class AuditLog {
 public:
  /// File-sink knobs.
  struct FileSinkOptions {
    /// Rotate when the current file would exceed this size.
    size_t rotate_bytes = 1 << 20;
    /// Rotated generations kept (`path.1` .. `path.N`); older are
    /// deleted.
    int max_rotated_files = 3;
    /// Flush buffered output to the OS every this-many records...
    size_t flush_every_records = 32;
    /// ...or once this many bytes are buffered, whichever is first.
    size_t flush_every_bytes = 64 << 10;
  };

  /// Keeps at most `capacity` most recent entries.
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Fire-and-forget record: stores in memory, streams to the file sink
  /// (when attached) with batched flushes, and enqueues on the WAL
  /// (when attached) without waiting for durability.
  void Record(AuditEntry entry);

  /// Records with explicit acknowledgment through the attached WAL.
  /// On WAL failure (queue full, closed, or — in `kFsync` mode — a
  /// dropped batch) the entry is NOT stored anywhere and the error is
  /// returned: the caller owns the decision (fail the request closed,
  /// or degrade to `RecordMemoryOnly`).  Without a WAL attached this
  /// behaves like `Record` and returns OK.
  Status RecordDurable(AuditEntry entry, AuditDurability durability);

  /// Records into the bounded memory deque only — the degraded-mode
  /// trail while the durable sink is failing.  Never touches disk.
  void RecordMemoryOnly(AuditEntry entry);

  /// Streams every subsequent entry (one `ToString` line each) to
  /// `path`, rotating by size.  The file is opened in append mode so a
  /// restarted server keeps extending its trail.  Replaces any
  /// previously attached sink.
  Status AttachFileSink(std::string path, FileSinkOptions options);
  Status AttachFileSink(std::string path) {
    return AttachFileSink(std::move(path), FileSinkOptions());
  }

  /// Flushes and closes the sink.  Idempotent.
  void DetachFileSink();

  /// Routes subsequent records through `wal` (non-owning; the WAL must
  /// outlive its attachment).  Pass nullptr to detach.
  void AttachWal(AuditWal* wal);
  void DetachWal() { AttachWal(nullptr); }
  AuditWal* wal() const { return wal_.load(std::memory_order_acquire); }

  /// True while a WAL is attached and its sink is failing — the signal
  /// the server maps to its configured degraded mode.
  bool degraded() const;

  /// Flushes buffered sink output to the OS and (when a WAL is
  /// attached) waits until everything enqueued so far is fsync-durable.
  Status Flush();

  /// Entries that could not be written to the legacy file sink (disk
  /// full, rotation failure, ...).  They are still retained in memory.
  /// WAL failures are counted separately (`AuditWal::sink_failures`).
  int64_t sink_write_failures() const;

  /// Snapshot of the current entries, oldest first.
  std::vector<AuditEntry> Entries() const;

  /// Drains the log (e.g. to flush to durable storage).
  std::vector<AuditEntry> TakeAll();

  size_t size() const;
  int64_t total_recorded() const;

 private:
  /// Appends `entry` to the bounded memory deque.
  void Remember(AuditEntry entry);
  /// Writes one formatted line (no trailing newline) to the file sink,
  /// rotating and batch-flushing as needed.  No-op when detached.
  void WriteSinkLine(const std::string& line);
  /// Rotates `sink_path_` -> `.1` -> `.2` ... and reopens; caller holds
  /// `sink_mutex_`.
  void RotateLocked();

  // --- In-memory trail (guarded by mutex_) ---------------------------
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<AuditEntry> entries_;
  int64_t total_recorded_ = 0;

  // --- Legacy file sink (guarded by sink_mutex_) ---------------------
  mutable std::mutex sink_mutex_;
  std::FILE* sink_ = nullptr;
  std::string sink_path_;
  FileSinkOptions sink_options_;
  size_t sink_bytes_ = 0;
  size_t unflushed_records_ = 0;
  size_t unflushed_bytes_ = 0;
  int64_t sink_write_failures_ = 0;
  /// Lock-free "is a sink attached" probe so detached operation skips
  /// formatting entirely.
  std::atomic<bool> sink_attached_{false};

  // --- Durable WAL (self-synchronizing; pointer swapped atomically) --
  std::atomic<AuditWal*> wal_{nullptr};
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_AUDIT_LOG_H_
