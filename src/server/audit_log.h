#ifndef XMLSEC_SERVER_AUDIT_LOG_H_
#define XMLSEC_SERVER_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace xmlsec {
namespace server {

/// One access decision, as recorded by the document server.
struct AuditEntry {
  int64_t time = 0;         ///< request time (requester clock)
  std::string user;
  std::string ip;
  std::string sym;
  std::string uri;
  std::string query;        ///< XPath query, when one was made
  int http_status = 0;
  int64_t visible_nodes = 0;
  int64_t total_nodes = 0;
  bool cache_hit = false;

  /// One-line rendering: `time user@ip(sym) GET uri -> status k/n [hit]`.
  std::string ToString() const;
};

/// Bounded in-memory audit trail, thread-safe.  A security server must
/// be able to answer "who saw what, when" — this collects the decisions
/// the enforcement point makes; persistence is the embedder's concern
/// (drain with `TakeAll`).
class AuditLog {
 public:
  /// Keeps at most `capacity` most recent entries.
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Record(AuditEntry entry);

  /// Snapshot of the current entries, oldest first.
  std::vector<AuditEntry> Entries() const;

  /// Drains the log (e.g. to flush to durable storage).
  std::vector<AuditEntry> TakeAll();

  size_t size() const;
  int64_t total_recorded() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<AuditEntry> entries_;
  int64_t total_recorded_ = 0;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_AUDIT_LOG_H_
