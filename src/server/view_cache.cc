#include "server/view_cache.h"

#include <algorithm>
#include <functional>

namespace xmlsec {
namespace server {

namespace {
// A shard narrower than this suffers hash-imbalance evictions (a
// capacity-8 cache over 8 shards holds one entry per shard, so two
// keys hashing together evict each other).  Small caches therefore
// stay single-sharded — strict LRU — and sharding kicks in only once
// the capacity can absorb the imbalance.
constexpr size_t kMinEntriesPerShard = 8;
}  // namespace

ViewCache::ViewCache(size_t capacity, size_t shards) : capacity_(capacity) {
  size_t shard_count =
      capacity == 0
          ? 1
          : std::max<size_t>(
                1, std::min(shards, capacity / kMinEntriesPerShard));
  shard_capacity_ =
      capacity == 0 ? 0 : (capacity + shard_count - 1) / shard_count;
  shards_ = std::vector<Shard>(shard_count);
}

ViewCache::Shard& ViewCache::ShardFor(const Key& key) {
  if (shards_.size() == 1) return shards_[0];
  std::hash<std::string> h;
  size_t seed = h(key.uri);
  auto mix = [&seed, &h](const std::string& s) {
    seed ^= h(s) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  };
  mix(key.user);
  mix(key.ip);
  mix(key.sym);
  mix(key.subject);
  return shards_[seed % shards_.size()];
}

std::shared_ptr<const std::string> ViewCache::Get(const Key& key,
                                                  uint64_t version) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.version != version) {
    if (it != shard.entries.end()) {
      // Stale: computed against an older repository state.
      shard.lru.erase(it->second.lru_position);
      shard.entries.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (metric_evictions_ != nullptr) metric_evictions_->Inc();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) metric_misses_->Inc();
    return nullptr;
  }
  // Refresh LRU position: relink the node to the front in place
  // (iterators stay valid across splice — no erase/reinsert churn).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_position);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (metric_hits_ != nullptr) metric_hits_->Inc();
  return it->second.body;
}

void ViewCache::Put(const Key& key, uint64_t version, std::string body) {
  Put(key, version, std::make_shared<const std::string>(std::move(body)));
}

void ViewCache::Put(const Key& key, uint64_t version,
                    std::shared_ptr<const std::string> body) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Overwrite in place and refresh recency; no erase/reinsert.
    it->second.version = version;
    it->second.body = std::move(body);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_position);
    return;
  }
  while (shard.entries.size() >= shard_capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->Inc();
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, Entry{version, std::move(body), shard.lru.begin()});
}

void ViewCache::Clear() {
  int64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped += static_cast<int64_t>(shard.entries.size());
    shard.entries.clear();
    shard.lru.clear();
  }
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->Inc(dropped);
  }
}

int64_t ViewCache::InvalidateDocument(std::string_view uri) {
  int64_t dropped = 0;
  // Keys order by uri first, so a document's entries are one contiguous
  // run per shard.
  Key probe;
  probe.uri = std::string(uri);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.lower_bound(probe);
    while (it != shard.entries.end() && it->first.uri == probe.uri) {
      shard.lru.erase(it->second.lru_position);
      it = shard.entries.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->Inc(dropped);
  }
  return dropped;
}

void ViewCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                            obs::Counter* evictions) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_evictions_ = evictions;
}

size_t ViewCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace server
}  // namespace xmlsec
