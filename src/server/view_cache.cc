#include "server/view_cache.h"

namespace xmlsec {
namespace server {

std::optional<std::string> ViewCache::Get(const Key& key, uint64_t version) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.version != version) {
    if (it != entries_.end()) {
      // Stale: computed against an older repository state.
      lru_.erase(it->second.lru_position);
      entries_.erase(it);
      ++evictions_;
      if (metric_evictions_ != nullptr) metric_evictions_->Inc();
    }
    ++misses_;
    if (metric_misses_ != nullptr) metric_misses_->Inc();
    return std::nullopt;
  }
  // Refresh LRU position.
  lru_.erase(it->second.lru_position);
  lru_.push_front(key);
  it->second.lru_position = lru_.begin();
  ++hits_;
  if (metric_hits_ != nullptr) metric_hits_->Inc();
  return it->second.body;
}

void ViewCache::Put(const Key& key, uint64_t version, std::string body) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    if (metric_evictions_ != nullptr) metric_evictions_->Inc();
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{version, std::move(body), lru_.begin()});
}

void ViewCache::Clear() {
  entries_.clear();
  lru_.clear();
}

void ViewCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                            obs::Counter* evictions) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_evictions_ = evictions;
}

}  // namespace server
}  // namespace xmlsec
