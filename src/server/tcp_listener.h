#ifndef XMLSEC_SERVER_TCP_LISTENER_H_
#define XMLSEC_SERVER_TCP_LISTENER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "server/document_server.h"

namespace xmlsec {
namespace server {

class EventLoop;
struct EventLoopShared;

/// Robustness knobs of the TCP serving path.  Every limit fails closed:
/// a violated limit produces a clean HTTP error (408/431/503) and a
/// closed connection, never a hung worker or a partial view.
struct ListenerConfig {
  /// Worker threads serving accepted connections (legacy bounded-pool
  /// mode, `event_loops == 0`).  The accept loop never serves inline,
  /// so a slow client can stall at most one worker.
  int worker_threads = 4;
  /// Per-core event loops (> 0 selects the epoll serving path): each
  /// loop owns its own `SO_REUSEPORT` accept socket — the kernel shards
  /// incoming connections across loops — a private connection table
  /// with non-blocking state-machine reads/writes, and a
  /// sorted-deadline map enforcing the read/write deadlines.  Requests
  /// execute inline on their loop (they are CPU-bound view
  /// computations), so N loops saturate N cores.  When `SO_REUSEPORT`
  /// is unavailable, loop 0 accepts for everyone and hands connections
  /// off round-robin over lock-free SPSC rings.  `0` keeps the legacy
  /// blocking worker pool.
  int event_loops = 0;
  /// Test hook: pretend `SO_REUSEPORT` is unavailable so the hand-off
  /// fallback path is exercised deterministically.
  bool force_accept_handoff = false;
  /// Injectable time source for the event-loop deadlines (nullptr =
  /// `steady_clock::now`).  Deterministic deadline tests install a
  /// manual clock, advance it, and call `Wake()` — no wall-clock
  /// sleeps.  Ignored by the legacy pool (which blocks in poll()).
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Legacy pool: accepted connections waiting for a free worker.
  /// Event loops: open connections each loop owns before it sheds.
  /// Beyond the bound the listener sheds load: `503 Service
  /// Unavailable` + `Retry-After` instead of letting the backlog (and
  /// tail latency) grow unboundedly.
  size_t accept_queue_limit = 64;
  /// Per-connection deadline for reading the request head (slowloris
  /// defence); expiry answers `408 Request Timeout`.
  int read_timeout_ms = 5000;
  /// Per-connection deadline for writing the response (slow-reader
  /// defence); expiry closes the connection.
  int write_timeout_ms = 5000;
  /// Request-head cap, enforced incrementally while reading; exceeding
  /// it answers `431 Request Header Fields Too Large`.
  size_t max_request_head = 64 * 1024;
  /// Entity-body cap (POST /update batches), checked against the
  /// declared Content-Length as soon as the head completes and
  /// incrementally while the body streams in; exceeding it answers
  /// `413 Content Too Large`.
  size_t max_request_body = 1024 * 1024;
  /// `SO_SNDBUF` applied to accepted connections (0 = kernel default
  /// with auto-tuning).  Production leaves this 0; the deterministic
  /// slow-reader tests pin it small so a response reliably overflows
  /// the socket buffer and exercises the write-deadline path.
  int so_sndbuf = 0;
  /// `Stop()` grace period: in-flight and queued requests may finish for
  /// this long, then remaining connections are force-closed.
  int drain_timeout_ms = 2000;
  /// Admin hook behind `POST /admin/reload`: rebuilds the policy
  /// repository and atomically swaps it into the document server (the
  /// listener holds the server const, so the owner — who can mutate —
  /// wires this).  An OK status answers `200`; an error answers `500`
  /// with the error text (the admin endpoint is trusted, unlike the
  /// fail-closed document path).  Unset: the endpoint answers `404`.
  std::function<Status()> reload_handler;
  /// Metrics registry backing the listener counters, `/healthz` and the
  /// `GET /metrics` Prometheus endpoint.  nullptr selects the
  /// process-wide `obs::DefaultRegistry()`.  Pass the SAME registry the
  /// `SecureDocumentServer` instruments so one scrape covers transport
  /// and enforcement.  Must outlive the listener.
  obs::MetricsRegistry* metrics = nullptr;
};

/// HTTP/1.0 listener over POSIX sockets — the actual "requested via an
/// HTTP connection" transport of the paper's §7 scenario, hardened into
/// a fault-tolerant enforcement point.  Two serving modes share every
/// limit, endpoint, counter family, and fail-closed guarantee:
///
///  * `event_loops > 0`: N per-core epoll event loops with
///    `SO_REUSEPORT`-sharded accept (see `EventLoop`) — the scaling
///    path; throughput grows near-linearly with loops on multi-core
///    hosts (gated by `scripts/check_bench.sh`);
///  * `event_loops == 0`: the legacy bounded worker pool + bounded
///    accept queue;
///
/// with, in both modes:
///
///  * overload shed with `503 Retry-After`;
///  * poll-based read/write deadlines (with `SO_RCVTIMEO`/`SO_SNDTIMEO`
///    as a belt-and-braces fallback), incremental head-size cap,
///    `EINTR`-safe partial `recv`/`send` loops;
///  * `GET /healthz` served by the listener itself: `200 ready` /
///    `503 draining` plus pool/queue/shed counters (never touches the
///    document repository, so it works even under failpoints);
///  * `GET /metrics` served by the listener itself: Prometheus
///    text-format exposition of the attached registry — transport
///    counters, per-stage pipeline histograms, cache and failpoint
///    telemetry — available even while draining;
///  * graceful drain on `Stop()` with a hard deadline, then force-close.
///
/// All listener counters live in the metrics registry (one source of
/// truth for `/healthz`, `/metrics`, and the accessors below); the
/// accessors report deltas since the last `Start()` so a restarted or
/// test-local listener still observes its own traffic.
///
/// The requester's numeric address comes from the peer socket; the
/// symbolic name is derived from a static suffix (reverse DNS is out of
/// scope for the reproduction): loopback peers get `sym_for_loopback`.
class TcpHttpListener {
 public:
  explicit TcpHttpListener(const SecureDocumentServer* server,
                           std::string sym_for_loopback = "localhost",
                           ListenerConfig config = {});

  ~TcpHttpListener();

  TcpHttpListener(const TcpHttpListener&) = delete;
  TcpHttpListener& operator=(const TcpHttpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// accept loop and the worker pool — or, with `config.event_loops >
  /// 0`, the per-core event loops with their sharded accept sockets.
  Status Start(uint16_t port);

  /// Nudges every event loop out of `epoll_wait` so deadlines are
  /// re-evaluated against the (possibly manual) clock immediately.
  /// The deterministic-timing test hook; no-op in legacy pool mode.
  void Wake();

  /// The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests up to
  /// `drain_timeout_ms`, force-closes the rest, joins all threads.
  /// Idempotent; a stopped listener object can be Start()ed again.
  void Stop();

  // --- Counters (registry-backed; deltas since Start, except gauges) ----
  int64_t requests_served() const { return Delta(served_, served_base_); }
  int64_t requests_shed() const { return Delta(shed_, shed_base_); }
  int64_t read_timeouts() const {
    return Delta(read_timeouts_c_, read_timeouts_base_);
  }
  int64_t write_timeouts() const {
    return Delta(write_timeouts_c_, write_timeouts_base_);
  }
  int64_t oversized_heads() const {
    return Delta(oversized_heads_c_, oversized_heads_base_);
  }
  int64_t oversized_bodies() const {
    return Delta(oversized_bodies_c_, oversized_bodies_base_);
  }
  int64_t health_checks() const {
    return Delta(health_checks_c_, health_checks_base_);
  }
  int64_t metrics_scrapes() const {
    return Delta(metrics_scrapes_c_, metrics_scrapes_base_);
  }
  int64_t reloads() const { return Delta(reloads_c_, reloads_base_); }
  int64_t reload_failures() const {
    return Delta(reload_failures_c_, reload_failures_base_);
  }
  bool draining() const { return draining_.load(); }
  /// Legacy pool: accepted connections waiting for a worker.  Event
  /// loops: open connections summed over the per-loop gauges (each
  /// written only by its owning loop, so the accounting is exact under
  /// sharding).
  size_t queue_depth() const;
  int in_flight() const;

  /// The registry serving `GET /metrics` (never nullptr).
  obs::MetricsRegistry* metrics() const { return registry_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int connection_fd);
  /// Event-loop mode bring-up/teardown (`config_.event_loops > 0`).
  Status StartEventLoops(uint16_t port);
  void StopEventLoops();
  /// Produces the full response for a complete request head — local
  /// endpoints (/healthz, /metrics, /admin/reload — the reload handler
  /// runs inline) or the document path — updating the endpoint
  /// counters.  Shared by both serving modes.  Empty head => "".
  std::string RespondToHead(const std::string& head, int connection_fd);
  /// Reads the full request — head plus any Content-Length body — with
  /// the incremental size caps and read deadline.  Returns true with the
  /// raw request on success; on failure `*error_status` is 408
  /// (deadline), 431 (head oversize), 413 (declared body over
  /// `max_request_body`), or 0 (peer gone, nothing to answer).
  bool ReadHead(int connection_fd, std::string* head, int* error_status);
  /// EINTR-safe, poll-paced full write with the write deadline;
  /// tolerates short writes.  False when the peer is gone or the
  /// deadline expired.
  bool WriteAll(int connection_fd, std::string_view data);
  /// Half-closes our side, briefly drains unread client bytes (so the
  /// kernel does not turn close() into an RST that destroys the
  /// response in flight), then closes.
  static void GracefulClose(int connection_fd, int max_drain_ms);
  std::string HealthzResponse() const;
  std::string MetricsResponse() const;

  static int64_t Delta(const obs::Counter* counter, int64_t baseline) {
    return counter->Value() - baseline;
  }
  /// Re-captures the per-Start baselines of every counter.
  void CaptureBaselines();

  const SecureDocumentServer* server_;
  std::string sym_for_loopback_;
  ListenerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Event-loop mode state.  `loops_` is stable between Start and the
  /// end of Stop; `loops_mutex_` guards the accessor/Wake iteration
  /// against the final clear (the loop threads themselves are joined
  /// before the clear, so they never race it).
  mutable std::mutex loops_mutex_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<EventLoopShared> loop_shared_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;    ///< Workers wait for connections.
  std::condition_variable drained_cv_;  ///< Stop() waits for quiescence.
  std::deque<int> queue_;               ///< Accepted, unserved connections.
  std::set<int> in_flight_fds_;         ///< Connections being served now.

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> in_flight_{0};

  // Registry-backed instrumentation (resolved once, in the ctor).
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* served_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* read_timeouts_c_ = nullptr;
  obs::Counter* write_timeouts_c_ = nullptr;
  obs::Counter* oversized_heads_c_ = nullptr;
  obs::Counter* oversized_bodies_c_ = nullptr;
  obs::Counter* health_checks_c_ = nullptr;
  obs::Counter* metrics_scrapes_c_ = nullptr;
  obs::Counter* reloads_c_ = nullptr;
  obs::Counter* reload_failures_c_ = nullptr;
  obs::Counter* status_408_ = nullptr;  ///< listener-generated responses
  obs::Counter* status_413_ = nullptr;
  obs::Counter* status_431_ = nullptr;
  obs::Counter* status_503_ = nullptr;
  obs::Gauge* queue_depth_g_ = nullptr;
  obs::Gauge* workers_busy_g_ = nullptr;
  int64_t served_base_ = 0;
  int64_t shed_base_ = 0;
  int64_t read_timeouts_base_ = 0;
  int64_t write_timeouts_base_ = 0;
  int64_t oversized_heads_base_ = 0;
  int64_t oversized_bodies_base_ = 0;
  int64_t health_checks_base_ = 0;
  int64_t metrics_scrapes_base_ = 0;
  int64_t reloads_base_ = 0;
  int64_t reload_failures_base_ = 0;
};

/// Test/client helper: opens a connection to 127.0.0.1:`port`, sends
/// `request` verbatim, reads until the peer closes, returns the raw
/// response.
Result<std::string> FetchHttp(uint16_t port, std::string_view request);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_TCP_LISTENER_H_
