#ifndef XMLSEC_SERVER_TCP_LISTENER_H_
#define XMLSEC_SERVER_TCP_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/document_server.h"

namespace xmlsec {
namespace server {

/// Minimal blocking HTTP/1.0 listener over POSIX sockets — the actual
/// "requested via an HTTP connection" transport of the paper's §7
/// scenario.  One accept loop on a background thread; each connection is
/// served synchronously (request head up to 64 KiB, one response,
/// close), which matches HTTP/1.0 semantics and keeps the substrate
/// simple.
///
/// The requester's numeric address comes from the peer socket; the
/// symbolic name is derived from a static suffix (reverse DNS is out of
/// scope for the reproduction): loopback peers get `sym_for_loopback`.
class TcpHttpListener {
 public:
  explicit TcpHttpListener(const SecureDocumentServer* server,
                           std::string sym_for_loopback = "localhost")
      : server_(server), sym_for_loopback_(std::move(sym_for_loopback)) {}

  ~TcpHttpListener();

  TcpHttpListener(const TcpHttpListener&) = delete;
  TcpHttpListener& operator=(const TcpHttpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// accept loop.
  Status Start(uint16_t port);

  /// The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }

  /// Stops accepting, joins the accept thread.  Idempotent.
  void Stop();

  int64_t requests_served() const { return requests_served_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int connection_fd);

  const SecureDocumentServer* server_;
  std::string sym_for_loopback_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
};

/// Test/client helper: opens a connection to 127.0.0.1:`port`, sends
/// `request` verbatim, reads until the peer closes, returns the raw
/// response.
Result<std::string> FetchHttp(uint16_t port, std::string_view request);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_TCP_LISTENER_H_
