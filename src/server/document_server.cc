#include "server/document_server.h"

#include "xpath/evaluator.h"

namespace xmlsec {
namespace server {

Result<authz::View> SecureDocumentServer::ComputeView(
    const authz::Requester& rq, std::string_view uri) const {
  const xml::Document* doc = repository_->FindDocument(uri);
  if (doc == nullptr) {
    return Status::NotFound("document '" + std::string(uri) +
                            "' is not registered");
  }
  std::span<const authz::Authorization> instance =
      repository_->InstanceAuths(uri);
  std::span<const authz::Authorization> schema;
  std::string dtd_uri = repository_->DtdUriOf(uri);
  if (!dtd_uri.empty()) {
    schema = repository_->SchemaAuths(dtd_uri);
  }
  authz::ProcessorOptions options = config_.processor;
  options.policy = repository_->PolicyOf(uri, options.policy);
  authz::SecurityProcessor processor(groups_, options);
  return processor.ComputeView(*doc, instance, schema, rq);
}

ServerResponse SecureDocumentServer::Handle(
    const ServerRequest& request) const {
  ServerResponse response;
  bool cache_hit = false;
  auto record = [&]() {
    if (audit_ == nullptr) return;
    AuditEntry entry;
    entry.time = request.time;
    entry.user = request.user.empty() ? "anonymous" : request.user;
    entry.ip = request.ip;
    entry.sym = request.sym;
    entry.uri = request.uri;
    entry.query = request.query;
    entry.http_status = response.http_status;
    entry.visible_nodes = response.stats.prune.nodes_after;
    entry.total_nodes = response.stats.prune.nodes_before;
    entry.cache_hit = cache_hit;
    audit_->Record(std::move(entry));
  };

  Status auth_status = users_->Authenticate(request.user, request.password);
  if (!auth_status.ok()) {
    response.http_status = 401;
    response.reason = "Unauthorized";
    response.content_type = "text/plain";
    response.body = auth_status.ToString() + "\n";
    record();
    return response;
  }

  authz::Requester rq;
  rq.user = request.user.empty() ? "anonymous" : request.user;
  rq.ip = request.ip;
  rq.sym = request.sym;
  rq.time = request.time;

  // Serve memoized renderings when safe: plain GETs only, and never
  // while time-limited authorizations are loaded (their outcome depends
  // on the request time).
  const bool cacheable = config_.view_cache_capacity > 0 &&
                         request.query.empty() &&
                         !repository_->has_time_limited_auths();
  ViewCache::Key cache_key{request.uri, rq.user, rq.ip, rq.sym};
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    std::optional<std::string> hit =
        cache_.Get(cache_key, repository_->version());
    if (hit.has_value()) {
      response.body = std::move(*hit);
      cache_hit = true;
      record();
      return response;
    }
  }

  Result<authz::View> view = ComputeView(rq, request.uri);
  if (!view.ok()) {
    response.content_type = "text/plain";
    response.body = view.status().ToString() + "\n";
    if (view.status().code() == StatusCode::kNotFound) {
      response.http_status = 404;
      response.reason = "Not Found";
    } else {
      response.http_status = 500;
      response.reason = "Internal Server Error";
    }
    record();
    return response;
  }
  response.stats = view->stats;

  // The closed-world contract: an empty view and a missing document are
  // indistinguishable to the requester.
  if (view->empty()) {
    response.http_status = 404;
    response.reason = "Not Found";
    response.content_type = "text/plain";
    response.body = "NotFound: document '" + request.uri +
                    "' is not registered\n";
    record();
    return response;
  }

  if (!request.query.empty()) {
    xpath::VariableBindings vars;
    vars.emplace("user", xpath::Value(rq.user));
    vars.emplace("ip", xpath::Value(rq.ip));
    vars.emplace("sym", xpath::Value(rq.sym));
    Result<xpath::NodeSet> selected = xpath::SelectXPath(
        request.query, view->document->root(), &vars);
    if (!selected.ok()) {
      response.http_status = 400;
      response.reason = "Bad Request";
      response.content_type = "text/plain";
      response.body = selected.status().ToString() + "\n";
      record();
      return response;
    }
    std::string body = "<query-result count=\"" +
                       std::to_string(selected->size()) + "\">\n";
    for (const xml::Node* node : *selected) {
      if (node->IsAttribute()) {
        body += "<attribute name=\"" + node->NodeName() + "\">" +
                xml::EscapeText(node->NodeValue()) + "</attribute>\n";
      } else {
        body += xml::SerializeNode(*node) + "\n";
      }
    }
    body += "</query-result>\n";
    response.body = std::move(body);
    record();
    return response;
  }

  xml::SerializeOptions serialize = config_.serialize;
  if (config_.emit_loosened_dtd) {
    serialize.doctype = xml::DoctypeMode::kInternal;
  }
  response.body = view->ToXml(serialize);
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.Put(cache_key, repository_->version(), response.body);
  }
  record();
  return response;
}

std::string SecureDocumentServer::HandleHttp(std::string_view raw_request,
                                             std::string_view ip,
                                             std::string_view sym) const {
  Result<HttpRequest> parsed = ParseHttpRequest(raw_request);
  if (!parsed.ok()) {
    return BuildHttpResponse(400, "Bad Request", "text/plain",
                             parsed.status().ToString() + "\n");
  }
  if (parsed->method != "GET" && parsed->method != "HEAD") {
    return BuildHttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  }

  ServerRequest request;
  request.ip = std::string(ip);
  request.sym = std::string(sym);
  request.uri = parsed->path;
  if (!request.uri.empty() && request.uri.front() == '/') {
    request.uri.erase(request.uri.begin());
  }
  auto query_it = parsed->query.find("query");
  if (query_it != parsed->query.end()) request.query = query_it->second;

  auto auth_it = parsed->headers.find("authorization");
  if (auth_it != parsed->headers.end()) {
    Result<std::pair<std::string, std::string>> credentials =
        ParseBasicAuth(auth_it->second);
    if (!credentials.ok()) {
      return BuildHttpResponse(401, "Unauthorized", "text/plain",
                               credentials.status().ToString() + "\n");
    }
    request.user = credentials->first;
    request.password = credentials->second;
  }

  ServerResponse response = Handle(request);
  return BuildHttpResponse(response.http_status, response.reason,
                           response.content_type,
                           parsed->method == "HEAD" ? "" : response.body);
}

}  // namespace server
}  // namespace xmlsec
