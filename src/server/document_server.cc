#include "server/document_server.h"

#include <chrono>

#include "common/failpoint.h"
#include "rewrite/query_result.h"
#include "server/audit_wal.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace server {

namespace {

/// Shapes `response` into a fail-closed denial: the given `5xx`/`504`
/// status with an EMPTY body.  Internal failure detail must never cross
/// the trust boundary — an attacker probing fault behaviour learns
/// nothing but "denied", and a fault can never leak a partial or
/// unpruned view.
void FailClosed(ServerResponse* response, int status,
                std::string_view reason) {
  response->http_status = status;
  response->reason = std::string(reason);
  response->content_type = "text/plain";
  response->body.clear();
  response->shared_body.reset();
}

int64_t NsBetween(obs::RequestTrace::Clock::time_point begin,
                  obs::RequestTrace::Clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
      .count();
}

/// The stages the serving pipeline reports span timings for.
constexpr std::string_view kStages[] = {
    "auth",       // authentication + subject resolution
    "cache_get",  // view-cache probe
    "lookup",     // repository document / authorization-set lookup
    "project",    // single-pass view projection (legacy: deep clone)
    "label",      // compute-view tree labeling (paper Fig. 2)
    "prune",      // prune pass (zero under the projection pipeline)
    "loosen",     // DTD loosening (+ optional output validation)
    "rewrite",    // query rewriting (guard insertion + oracle setup)
    "query",      // XPath-over-view evaluation
    "serialize",  // view unparse
    "cache_put",  // view-cache insert
    "update",     // write batch: check + re-label + mutate + publish
    "audit",      // audit-trail append
};

/// Parses the `<update>` batch body of a `POST /update/<uri>` request:
///
///   <update>
///     <insert target="/lab/people" before="person[2]"><person/></insert>
///     <delete target="//draft[1]"/>
///     <set-attribute target="//paper[1]" name="category" value="public"/>
///     <remove-attribute target="//paper[1]" name="note"/>
///     <set-text target="//title[1]">New title</set-text>
///   </update>
///
/// Every op carries a `target` XPath that must select exactly one
/// element (enforced later by the update processor).  `<insert>`
/// content is re-serialized verbatim as the fragment, so entity and
/// DTD-context resolution happen exactly once, inside the processor,
/// against the HOST document's DTD.
Result<std::vector<authz::UpdateOp>> ParseUpdateOps(std::string_view body) {
  if (body.empty()) {
    return Status::InvalidArgument("empty update body");
  }
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                          xml::ParseDocument(body));
  const xml::Element* root = doc->root();
  if (root == nullptr || root->tag() != "update") {
    return Status::InvalidArgument(
        "update body must be an XML document with an <update> root");
  }
  std::vector<authz::UpdateOp> ops;
  for (size_t i = 0; i < root->child_count(); ++i) {
    const xml::Node* child = root->child(i);
    const xml::Element* op_el = child->AsElement();
    if (op_el == nullptr) continue;  // inter-op whitespace / comments
    authz::UpdateOp op;
    const std::string& tag = op_el->tag();
    if (tag == "insert") {
      op.kind = authz::UpdateOpKind::kInsertChild;
      for (size_t j = 0; j < op_el->child_count(); ++j) {
        op.fragment += xml::SerializeNode(*op_el->child(j));
      }
      if (auto before = op_el->GetAttribute("before")) op.before = *before;
      if (op.fragment.empty()) {
        return Status::InvalidArgument("<insert> carries no content");
      }
    } else if (tag == "delete") {
      op.kind = authz::UpdateOpKind::kDeleteNode;
    } else if (tag == "set-attribute") {
      op.kind = authz::UpdateOpKind::kSetAttribute;
      auto name = op_el->GetAttribute("name");
      auto value = op_el->GetAttribute("value");
      if (!name.has_value() || name->empty() || !value.has_value()) {
        return Status::InvalidArgument(
            "<set-attribute> requires name and value attributes");
      }
      op.name = *name;
      op.value = *value;
    } else if (tag == "remove-attribute") {
      op.kind = authz::UpdateOpKind::kRemoveAttribute;
      auto name = op_el->GetAttribute("name");
      if (!name.has_value() || name->empty()) {
        return Status::InvalidArgument(
            "<remove-attribute> requires a name attribute");
      }
      op.name = *name;
    } else if (tag == "set-text") {
      op.kind = authz::UpdateOpKind::kSetText;
      op.value = op_el->TextContent();
    } else {
      return Status::InvalidArgument("unknown update operation <" + tag +
                                     ">");
    }
    auto target = op_el->GetAttribute("target");
    if (!target.has_value() || target->empty()) {
      return Status::InvalidArgument("<" + tag +
                                     "> requires a target XPath attribute");
    }
    op.target = *target;
    ops.push_back(std::move(op));
  }
  if (ops.empty()) {
    return Status::InvalidArgument("update batch contains no operations");
  }
  return ops;
}

}  // namespace

SecureDocumentServer::SecureDocumentServer(const Repository* repository,
                                           const UserDirectory* users,
                                           const authz::GroupStore* groups,
                                           ServerConfig config)
    // Aliasing shared_ptr: non-owning, the caller keeps the repository
    // alive — existing embedders keep working unchanged.
    : SecureDocumentServer(
          std::shared_ptr<const Repository>(
              std::shared_ptr<const Repository>(), repository),
          users, groups, std::move(config)) {}

SecureDocumentServer::SecureDocumentServer(
    std::shared_ptr<const Repository> repository, const UserDirectory* users,
    const authz::GroupStore* groups, ServerConfig config)
    : repository_(std::move(repository)),
      users_(users),
      groups_(groups),
      config_(std::move(config)),
      cache_(config_.view_cache_capacity) {
  // Resolve every metric handle ONCE; the request hot path only does
  // relaxed atomic adds (see src/obs/metrics.h).
  obs::MetricsRegistry* registry =
      config_.metrics != nullptr ? config_.metrics : obs::DefaultRegistry();
  instruments_.registry = registry;
  instruments_.requests = registry->GetCounter(
      "xmlsec_requests_total",
      "requests handled by the secure document server");
  instruments_.slow_requests = registry->GetCounter(
      "xmlsec_slow_requests_total",
      "requests at or above the XMLSEC_TRACE_SLOW_MS threshold");
  instruments_.cache_bypass = registry->GetCounter(
      "xmlsec_view_cache_bypass_total",
      "requests that bypassed an enabled view cache (query present or "
      "time-limited authorizations loaded)");
  instruments_.request_seconds = registry->GetHistogram(
      "xmlsec_request_duration_seconds",
      "end-to-end secure-serving latency", obs::DefaultLatencyBoundsNs(),
      1e-9);
  for (std::string_view stage : kStages) {
    instruments_.stages[stage] = registry->GetHistogram(
        "xmlsec_stage_duration_seconds",
        "per-stage latency of the secure-serving pipeline",
        obs::DefaultLatencyBoundsNs(), 1e-9,
        {{"stage", std::string(stage)}});
  }
  instruments_.automaton_compiles = registry->GetCounter(
      "xmlsec_policy_automaton_compiles_total",
      "policy automata compiled (per document, on policy change)");
  instruments_.automaton_compile_failures = registry->GetCounter(
      "xmlsec_policy_automaton_compile_failures_total",
      "policy-automaton compiles that failed (the document serves "
      "through the XPath path)");
  instruments_.compiled_table_nodes = registry->GetCounter(
      "xmlsec_compiled_table_nodes_total",
      "nodes labeled by automaton table lookup");
  instruments_.compiled_residual_nodes = registry->GetCounter(
      "xmlsec_compiled_residual_nodes_total",
      "nodes labeled through residual (value-dependent) XPath "
      "evaluations under compiled labeling");
  instruments_.compiled_fallbacks = registry->GetCounter(
      "xmlsec_compiled_fallbacks_total",
      "compiled-labeling requests that fell back to the XPath path "
      "(schema mismatch)");
  instruments_.automaton_states = registry->GetGauge(
      "xmlsec_policy_automaton_states",
      "state count of the most recently compiled policy automaton");
  instruments_.rewrite_served = registry->GetCounter(
      "xmlsec_rewrite_served_total",
      "queries answered through the rewrite path (no view materialized)");
  instruments_.rewrite_compiles = registry->GetCounter(
      "xmlsec_rewrite_compiles_total",
      "query rewriters built (per document, on policy change)");
  // Every fallback reason is registered eagerly so the scrape always
  // carries the full family and dashboards can tell zero from absent.
  for (std::string_view reason :
       {std::string_view("no_automaton"), std::string_view("reserved_function"),
        std::string_view("unsupported_function"),
        std::string_view("oracle_error"),
        std::string_view("schema_mismatch")}) {
    instruments_.rewrite_fallbacks[reason] = registry->GetCounter(
        "xmlsec_rewrite_fallbacks_total",
        "queries that fell back from the rewrite path to the "
        "materialized path, by reason",
        {{"reason", std::string(reason)}});
  }
  // Audit-durability families are registered here — not lazily on WAL
  // attach — so the scrape always carries them and dashboards can alert
  // on absence-of-data vs. zero.
  instruments_.audit_queue_depth = registry->GetGauge(
      "xmlsec_audit_queue_depth",
      "audit WAL frames waiting for the background writer");
  instruments_.audit_fsyncs = registry->GetCounter(
      "xmlsec_audit_fsync_total", "audit WAL group commits (fsync calls)");
  instruments_.audit_sink_failures = registry->GetCounter(
      "xmlsec_audit_sink_failures_total",
      "audit WAL frames dropped by sink failures (write/rotate/fsync "
      "errors, queue overflow)");
  instruments_.audit_degraded = registry->GetGauge(
      "xmlsec_audit_degraded",
      "1 while the durable audit sink is failing, 0 otherwise");
  instruments_.audit_denied = registry->GetCounter(
      "xmlsec_audit_denied_total",
      "positive accesses denied (fail-closed) or degraded because the "
      "audit record could not be durably acknowledged");
  instruments_.update_requests = registry->GetCounter(
      "xmlsec_update_requests_total",
      "write batches received on POST /update");
  instruments_.update_applied = registry->GetCounter(
      "xmlsec_update_applied_total",
      "write batches applied and published (200)");
  instruments_.update_denied = registry->GetCounter(
      "xmlsec_update_denied_total",
      "write batches denied by write-action labeling (403)");
  instruments_.update_failed = registry->GetCounter(
      "xmlsec_update_failed_total",
      "write batches failed closed (5xx: internal fault, failpoint, or "
      "unacknowledged audit record)");
  instruments_.update_ops = registry->GetCounter(
      "xmlsec_update_ops_applied_total",
      "individual operations applied by accepted write batches");
  instruments_.update_relabel_incremental = registry->GetCounter(
      "xmlsec_update_relabel_incremental_total",
      "update ops re-labeled only inside the mutated subtree (fully "
      "decidable compiled policy)");
  instruments_.update_relabel_full = registry->GetCounter(
      "xmlsec_update_relabel_full_total",
      "update ops that paid a whole-document re-label (no automaton, "
      "residual authorizations, or resolver fallback)");
  instruments_.update_cache_invalidations = registry->GetCounter(
      "xmlsec_update_cache_invalidations_total",
      "cached views dropped by dirty-region invalidation after a "
      "published write batch");
  cache_.BindMetrics(
      registry->GetCounter("xmlsec_view_cache_hits_total",
                           "view-cache hits"),
      registry->GetCounter("xmlsec_view_cache_misses_total",
                           "view-cache misses"),
      registry->GetCounter(
          "xmlsec_view_cache_evictions_total",
          "view-cache entries dropped (LRU eviction or stale "
          "invalidation)"));
  obs::RegisterFailpointCollector(registry);
}

SecureDocumentServer::~SecureDocumentServer() {
  if (audit_ != nullptr && audit_->wal() != nullptr) {
    audit_->wal()->BindMetrics(nullptr, nullptr, nullptr, nullptr);
  }
}

void SecureDocumentServer::set_audit_log(AuditLog* log) {
  // Unbind the previous log's WAL before re-pointing: its bound
  // gauges belong to this server's registry lifetime.
  if (audit_ != nullptr && audit_->wal() != nullptr && audit_ != log) {
    audit_->wal()->BindMetrics(nullptr, nullptr, nullptr, nullptr);
  }
  audit_ = log;
  if (log != nullptr && log->wal() != nullptr) {
    log->wal()->BindMetrics(
        instruments_.audit_queue_depth, instruments_.audit_fsyncs,
        instruments_.audit_sink_failures, instruments_.audit_degraded);
  }
}

void SecureDocumentServer::SwapRepository(
    std::shared_ptr<const Repository> next) {
  std::lock_guard<std::mutex> lock(repository_mutex_);
  repository_ = std::move(next);
  // No cache purge needed: the new repository's version is globally
  // unique, so every cached view/automaton is stale by version check
  // and evicts on its next probe.
}

std::shared_ptr<const Repository> SecureDocumentServer::repository_snapshot()
    const {
  std::lock_guard<std::mutex> lock(repository_mutex_);
  return repository_;
}

obs::Counter* SecureDocumentServer::Instruments::StatusCounter(
    int http_status) const {
  std::lock_guard<std::mutex> lock(status_mutex);
  auto it = status_counters.find(http_status);
  if (it != status_counters.end()) return it->second;
  obs::Counter* counter = registry->GetCounter(
      "xmlsec_http_responses_total", "HTTP responses by status code",
      {{"status", std::to_string(http_status)}});
  status_counters.emplace(http_status, counter);
  return counter;
}

obs::Histogram* SecureDocumentServer::Instruments::Stage(
    std::string_view name) const {
  auto it = stages.find(name);
  return it == stages.end() ? nullptr : it->second;
}

std::shared_ptr<const analysis::PolicyAutomaton>
SecureDocumentServer::AutomatonFor(
    const Repository& repo, const std::string& uri, const xml::Document& doc,
    std::span<const authz::Authorization> instance,
    std::span<const authz::Authorization> schema) const {
  if (doc.dtd() == nullptr) return nullptr;
  const uint64_t version = repo.version();
  {
    std::lock_guard<std::mutex> lock(automata_mutex_);
    auto it = automata_.find(uri);
    if (it != automata_.end() && it->second.version == version) {
      return it->second.automaton;
    }
  }
  // Compile outside the lock — only the winner of a racing recompile is
  // kept, which is harmless (same inputs, same automaton).
  Result<std::unique_ptr<analysis::PolicyAutomaton>> compiled =
      analysis::PolicyAutomaton::Compile(*doc.dtd(), instance, schema);
  std::shared_ptr<const analysis::PolicyAutomaton> automaton;
  if (compiled.ok()) {
    automaton = std::shared_ptr<const analysis::PolicyAutomaton>(
        std::move(*compiled));
    instruments_.automaton_compiles->Inc();
    instruments_.automaton_states->Set(
        static_cast<int64_t>(automaton->stats().states));
  } else {
    // Memoize the failure too: the XPath path stays correct, and the
    // compile is not retried until the repository changes.
    instruments_.automaton_compile_failures->Inc();
  }
  std::lock_guard<std::mutex> lock(automata_mutex_);
  automata_[uri] = AutomatonEntry{version, automaton};
  return automaton;
}

std::shared_ptr<const rewrite::QueryRewriter>
SecureDocumentServer::RewriterFor(
    const Repository& repo, const std::string& uri,
    std::shared_ptr<const analysis::PolicyAutomaton> automaton) const {
  const uint64_t version = repo.version();
  std::lock_guard<std::mutex> lock(automata_mutex_);
  auto it = rewriters_.find(uri);
  if (it != rewriters_.end() && it->second.version == version) {
    return it->second.rewriter;
  }
  auto rewriter =
      std::make_shared<const rewrite::QueryRewriter>(std::move(automaton));
  rewriters_[uri] = RewriterEntry{version, rewriter};
  instruments_.rewrite_compiles->Inc();
  return rewriter;
}

Result<authz::View> SecureDocumentServer::ComputeView(
    const authz::Requester& rq, std::string_view uri) const {
  std::shared_ptr<const Repository> repo = repository_snapshot();
  return ComputeViewOn(*repo, rq, uri);
}

Result<authz::View> SecureDocumentServer::ComputeViewOn(
    const Repository& repo, const authz::Requester& rq,
    std::string_view uri) const {
  const auto lookup_begin = obs::RequestTrace::Clock::now();
  // Fault-injection sites around every repository lookup: a failed
  // lookup aborts the request instead of proceeding with a partial
  // (possibly permissive-by-omission) authorization state.
  XMLSEC_RETURN_IF_ERROR(failpoint::Check("repo.find_document"));
  const xml::Document* doc = repo.FindDocument(uri);
  if (doc == nullptr) {
    return Status::NotFound("document '" + std::string(uri) +
                            "' is not registered");
  }
  // A fault while fetching the authorization sets is the dangerous case:
  // under an `open` policy, silently treating "lookup failed" as "no
  // authorizations" would serve the WHOLE document.  Abort instead.
  XMLSEC_RETURN_IF_ERROR(failpoint::Check("repo.instance_auths"));
  std::span<const authz::Authorization> instance =
      repo.InstanceAuths(uri);
  std::span<const authz::Authorization> schema;
  std::string dtd_uri = repo.DtdUriOf(uri);
  if (!dtd_uri.empty()) {
    XMLSEC_RETURN_IF_ERROR(failpoint::Check("repo.schema_auths"));
    schema = repo.SchemaAuths(dtd_uri);
  }
  authz::ProcessorOptions options = config_.processor;
  options.policy = repo.PolicyOf(uri, options.policy);
  const int64_t lookup_ns =
      NsBetween(lookup_begin, obs::RequestTrace::Clock::now());
  std::shared_ptr<const analysis::PolicyAutomaton> automaton;
  if (options.labeling == authz::LabelingMode::kCompiled &&
      options.pipeline == authz::ViewPipeline::kProject) {
    automaton = AutomatonFor(repo, std::string(uri), *doc, instance, schema);
  }
  authz::SecurityProcessor processor(groups_, options);
  Result<authz::View> view =
      processor.ComputeView(*doc, instance, schema, rq, automaton.get());
  if (view.ok()) {
    view->stats.lookup_ns = lookup_ns;
    instruments_.compiled_table_nodes->Inc(view->stats.labeling.table_nodes);
    instruments_.compiled_residual_nodes->Inc(
        view->stats.labeling.residual_nodes);
    instruments_.compiled_fallbacks->Inc(
        view->stats.labeling.compiled_fallbacks);
  }
  return view;
}

SecureDocumentServer::CacheKeyInfo SecureDocumentServer::NormalizedCacheKey(
    const Repository& repo, const authz::Requester& rq,
    const std::string& uri) const {
  // Soundness: once time-limited authorizations are excluded (the
  // caller bypasses the cache for those), the computed view depends on
  // the requester ONLY through (a) which action-matching authorization
  // subjects the requester matches — `RequesterMatches` per auth — and
  // (b) the $user/$ip/$sym/$time bindings that an *applicable*
  // authorization path may reference.  The fingerprint encodes (a)
  // positionally, one character per action-matching authorization of
  // the document and of its DTD; for (b) the raw requester triple is
  // appended to the key when any applicable path carries an XPath
  // variable, and a `$time` reference disables caching outright.
  CacheKeyInfo info;
  info.key.uri = uri;
  authz::PolicyOptions policy =
      repo.PolicyOf(uri, config_.processor.policy);
  std::string fingerprint;
  bool needs_identity = false;
  auto consider = [&](std::span<const authz::Authorization> auths,
                      char level_tag) {
    fingerprint.push_back(level_tag);
    for (const authz::Authorization& auth : auths) {
      if (static_cast<int>(auth.action) != policy.action) continue;
      const bool applies =
          authz::RequesterMatches(rq, auth.subject, *groups_);
      fingerprint.push_back(applies ? '1' : '0');
      if (applies && auth.object.path.find('$') != std::string::npos) {
        if (auth.object.path.find("$time") != std::string::npos) {
          info.time_dependent = true;
        } else {
          // $user/$ip/$sym (or an unknown variable — be conservative):
          // the view reads the identity itself.
          needs_identity = true;
        }
      }
    }
  };
  consider(repo.InstanceAuths(uri), 'i');
  std::string dtd_uri = repo.DtdUriOf(uri);
  if (!dtd_uri.empty()) consider(repo.SchemaAuths(dtd_uri), 's');
  info.key.subject = std::move(fingerprint);
  if (needs_identity) {
    info.key.user = rq.user;
    info.key.ip = rq.ip;
    info.key.sym = rq.sym;
  }
  return info;
}

ServerResponse SecureDocumentServer::Handle(
    const ServerRequest& request) const {
  obs::RequestTrace trace;
  instruments_.requests->Inc();
  ServerResponse response;
  bool cache_hit = false;
  std::string slow_trace;
  auto record = [&]() {
    if (audit_ == nullptr) return;
    AuditEntry entry;
    entry.time = request.time;
    entry.user = request.user.empty() ? "anonymous" : request.user;
    entry.ip = request.ip;
    entry.sym = request.sym;
    entry.uri = request.uri;
    entry.query = request.query;
    entry.http_status = response.http_status;
    entry.visible_nodes = response.stats.prune.nodes_after;
    entry.total_nodes = response.stats.prune.nodes_before;
    entry.cache_hit = cache_hit;
    entry.trace = slow_trace;
    if (response.http_status != 200 || audit_->wal() == nullptr) {
      // Denials, errors, and WAL-less deployments: fire-and-forget.
      audit_->Record(std::move(entry));
      return;
    }
    // Positive access with a durable WAL attached: the response only
    // leaves once the record is acknowledged at the configured level
    // ("no audit, no view", made explicit).
    Status durable =
        audit_->RecordDurable(entry, config_.audit_durability);
    if (durable.ok()) return;
    instruments_.audit_denied->Inc();
    if (config_.audit_degraded_mode == AuditDegradedMode::kFailClosed) {
      // Deny the access; the trail must not claim a 200 was served, so
      // the (memory-only, best-effort) record carries the denial.
      FailClosed(&response, 503, "Service Unavailable");
      entry.http_status = 503;
    }
    // kMemoryAudit: serve anyway, record in the bounded memory trail.
    audit_->RecordMemoryOnly(std::move(entry));
  };
  // Success responses additionally pass the audit gate: if the audit
  // trail cannot accept the access record, the access itself is denied
  // ("no audit, no view") — and the denial is recorded best-effort.
  auto finalize = [&]() -> ServerResponse {
    if (response.http_status == 200 && failpoint::ShouldFail("server.audit")) {
      FailClosed(&response, 500, "Internal Server Error");
    }
    const int64_t total_ns = trace.ElapsedNs();
    // Slow request?  Attach the span breakdown to this access's audit
    // record, so the post-mortem travels through the audit sink.
    const int64_t threshold_ms = obs::SlowTraceThresholdMs();
    if (threshold_ms >= 0 && total_ns >= threshold_ms * 1'000'000) {
      instruments_.slow_requests->Inc();
      slow_trace = trace.Summary();
    }
    // The audit gate may amend the response (fail-closed 503), so it
    // runs BEFORE the per-status aggregation.
    const auto audit_begin = obs::RequestTrace::Clock::now();
    record();
    if (obs::Histogram* histogram = instruments_.Stage("audit")) {
      histogram->Observe(
          NsBetween(audit_begin, obs::RequestTrace::Clock::now()));
    }
    // Aggregate the request into the observability registry: per-stage
    // histograms, end-to-end latency, per-status totals.
    instruments_.request_seconds->Observe(total_ns);
    instruments_.StatusCounter(response.http_status)->Inc();
    for (const auto& [stage, ns] : trace.spans()) {
      if (obs::Histogram* histogram = instruments_.Stage(stage)) {
        histogram->Observe(ns);
      }
    }
    return response;
  };

  // ONE repository snapshot per request: a concurrent SwapRepository
  // publishes a complete new repository for LATER requests; this one
  // serves (and caches) consistently against what it saw at entry.
  const std::shared_ptr<const Repository> repo = repository_snapshot();

  // Per-request wall-clock budget: checked at stage boundaries so a
  // pathological request aborts with 504 instead of pinning a worker.
  const bool budgeted = config_.request_budget_ms != 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.request_budget_ms);
  auto over_budget = [&]() {
    return budgeted && std::chrono::steady_clock::now() >= deadline;
  };

  Status auth_status;
  {
    auto span = trace.Span("auth");
    auth_status = users_->Authenticate(request.user, request.password);
  }
  if (!auth_status.ok()) {
    response.http_status = 401;
    response.reason = "Unauthorized";
    response.content_type = "text/plain";
    response.body = auth_status.ToString() + "\n";
    return finalize();
  }

  authz::Requester rq;
  rq.user = request.user.empty() ? "anonymous" : request.user;
  rq.ip = request.ip;
  rq.sym = request.sym;
  rq.time = request.time;

  // Serve memoized renderings when safe: plain GETs only, and never
  // while time-limited authorizations are loaded (their outcome depends
  // on the request time).
  bool cacheable = config_.view_cache_capacity > 0 &&
                   request.query.empty() &&
                   !repo->has_time_limited_auths();
  ViewCache::Key cache_key;
  if (cacheable) {
    // The span must close before finalize() aggregates it, so the probe
    // runs in an inner scope and the outcome is acted on afterwards.
    bool cache_fault = false;
    std::shared_ptr<const std::string> hit;
    {
      auto span = trace.Span("cache_get");
      // Fault-injection site: a corrupt/failed cache probe must deny,
      // not fall through to a stale or wrong rendering.
      if (failpoint::ShouldFail("server.cache_get")) {
        cache_fault = true;
      } else {
        CacheKeyInfo info = NormalizedCacheKey(*repo, rq, request.uri);
        if (info.time_dependent) {
          // An applicable path references $time: the view varies with
          // the request instant, so memoizing it would be unsound.
          cacheable = false;
        } else {
          cache_key = std::move(info.key);
          // Defense in depth: `cacheable` already excludes query
          // requests, but the key still carries the query string so a
          // full-view rendering can never collide with a query result.
          cache_key.query = request.query;
          hit = cache_.Get(cache_key, repo->version());
        }
      }
    }
    if (cache_fault) {
      FailClosed(&response, 500, "Internal Server Error");
      return finalize();
    }
    if (hit != nullptr) {
      response.shared_body = std::move(hit);
      cache_hit = true;
      return finalize();
    }
  }
  if (config_.view_cache_capacity > 0 && !cacheable) {
    instruments_.cache_bypass->Inc();
  }

  if (over_budget()) {
    FailClosed(&response, 504, "Gateway Timeout");
    return finalize();
  }

  // Policy-safe query rewriting: answer `?query=` over the ORIGINAL
  // document with accessibility guards, skipping view materialization
  // entirely.  Any condition rewriting cannot handle falls through to
  // the materialized path below (counted, never an error); responses
  // are byte-identical between the two paths.
  if (!request.query.empty() &&
      config_.query_path == QueryPathMode::kRewrite) {
    enum class Outcome { kServed, kTerminal, kFallback };
    auto serve_rewritten = [&]() -> Outcome {
      auto span = trace.Span("rewrite");
      auto fall_back = [&](std::string_view reason) {
        auto it = instruments_.rewrite_fallbacks.find(reason);
        if (it != instruments_.rewrite_fallbacks.end()) it->second->Inc();
        return Outcome::kFallback;
      };
      // Same fault domain as the materialized query path: an injected
      // evaluator fault denies — it must not silently fall back and
      // mask the fault.
      if (failpoint::ShouldFail("server.query")) {
        FailClosed(&response, 500, "Internal Server Error");
        return Outcome::kTerminal;
      }
      // Fault-injection site: a fault anywhere in guard insertion or
      // oracle construction must deny, never serve an unguarded (hence
      // unpruned) evaluation and never a partial result.
      if (failpoint::ShouldFail("rewrite.compile")) {
        FailClosed(&response, 500, "Internal Server Error");
        return Outcome::kTerminal;
      }
      // Repository lookups, same failpoints and same outcomes as
      // ComputeViewOn: the rewrite path must not weaken the lookup
      // fault behaviour just because it skips the view.
      if (!failpoint::Check("repo.find_document").ok()) {
        FailClosed(&response, 500, "Internal Server Error");
        return Outcome::kTerminal;
      }
      const xml::Document* doc = repo->FindDocument(request.uri);
      if (doc == nullptr) {
        response.http_status = 404;
        response.reason = "Not Found";
        response.content_type = "text/plain";
        response.body = Status::NotFound("document '" + request.uri +
                                         "' is not registered")
                            .ToString() +
                        "\n";
        return Outcome::kTerminal;
      }
      if (!failpoint::Check("repo.instance_auths").ok()) {
        FailClosed(&response, 500, "Internal Server Error");
        return Outcome::kTerminal;
      }
      std::span<const authz::Authorization> instance =
          repo->InstanceAuths(request.uri);
      std::span<const authz::Authorization> schema;
      std::string dtd_uri = repo->DtdUriOf(request.uri);
      if (!dtd_uri.empty()) {
        if (!failpoint::Check("repo.schema_auths").ok()) {
          FailClosed(&response, 500, "Internal Server Error");
          return Outcome::kTerminal;
        }
        schema = repo->SchemaAuths(dtd_uri);
      }
      authz::PolicyOptions policy =
          repo->PolicyOf(request.uri, config_.processor.policy);

      std::shared_ptr<const analysis::PolicyAutomaton> automaton =
          AutomatonFor(*repo, request.uri, *doc, instance, schema);
      if (automaton == nullptr) return fall_back("no_automaton");
      std::shared_ptr<const rewrite::QueryRewriter> rewriter =
          RewriterFor(*repo, request.uri, automaton);

      Result<std::unique_ptr<rewrite::VisibilityOracle>> oracle =
          rewriter->NewOracle(*doc, rq, *groups_, policy);
      if (!oracle.ok()) return fall_back("oracle_error");
      // Root visibility FIRST, parse errors second — the materialized
      // path 404s an all-hidden document before it ever parses the
      // query, and the two paths must be indistinguishable.
      if (!(*oracle)->RootVisible()) {
        if ((*oracle)->schema_mismatch()) {
          return fall_back("schema_mismatch");
        }
        // The closed-world 404, byte-identical to the empty-view one.
        response.http_status = 404;
        response.reason = "Not Found";
        response.content_type = "text/plain";
        response.body = "NotFound: document '" + request.uri +
                        "' is not registered\n";
        return Outcome::kTerminal;
      }

      Result<rewrite::RewrittenQuery> rewritten =
          rewriter->Rewrite(request.query);
      if (!rewritten.ok()) {
        response.http_status = 400;
        response.reason = "Bad Request";
        response.content_type = "text/plain";
        response.body = rewritten.status().ToString() + "\n";
        return Outcome::kTerminal;
      }
      if (!rewritten->ok()) {
        return fall_back(
            rewrite::UnsupportedReasonToString(rewritten->unsupported));
      }

      std::string body;
      Status query_status;
      bool mismatch = false;
      {
        auto query_span = trace.Span("query");
        xpath::VariableBindings vars;
        vars.emplace("user", xpath::Value(rq.user));
        vars.emplace("ip", xpath::Value(rq.ip));
        vars.emplace("sym", xpath::Value(rq.sym));
        xpath::NodeFilter filter = (*oracle)->Filter();
        xpath::EvalHooks hooks;
        hooks.node_visible = filter;
        xpath::Evaluator evaluator;
        Result<xpath::Value> value =
            evaluator.Evaluate(*rewritten->expr, doc->root(), &vars, &hooks);
        // A mismatch discovered DURING evaluation poisons the result
        // (the oracle answered false for nodes the view might show):
        // discard everything and let the materialized path answer.
        if ((*oracle)->schema_mismatch()) {
          mismatch = true;
        } else if (!value.ok()) {
          query_status = value.status();
        } else if (!value->is_node_set()) {
          // Quote the ORIGINAL expression, exactly as SelectXPath over
          // the view would — the guard must never leak into a response.
          query_status = Status::InvalidArgument(
              "XPath expression does not yield a node-set: " +
              rewritten->source);
        } else {
          body = rewrite::BuildQueryResultBody(value->nodes(), &filter);
        }
      }
      if (mismatch) return fall_back("schema_mismatch");
      if (!query_status.ok()) {
        response.http_status = 400;
        response.reason = "Bad Request";
        response.content_type = "text/plain";
        response.body = query_status.ToString() + "\n";
        return Outcome::kTerminal;
      }
      if (over_budget()) {
        FailClosed(&response, 504, "Gateway Timeout");
        return Outcome::kTerminal;
      }
      instruments_.rewrite_served->Inc();
      instruments_.compiled_table_nodes->Inc((*oracle)->table_nodes());
      instruments_.compiled_residual_nodes->Inc((*oracle)->residual_nodes());
      response.body = std::move(body);
      return Outcome::kServed;
    };
    const Outcome outcome = serve_rewritten();
    if (outcome != Outcome::kFallback) return finalize();
  }

  Result<authz::View> view = ComputeViewOn(*repo, rq, request.uri);
  if (!view.ok()) {
    if (view.status().code() == StatusCode::kNotFound) {
      response.http_status = 404;
      response.reason = "Not Found";
      response.content_type = "text/plain";
      response.body = view.status().ToString() + "\n";
    } else {
      // Internal faults (including injected failpoints) fail closed:
      // deny with an empty body, leak nothing.
      FailClosed(&response, 500, "Internal Server Error");
    }
    return finalize();
  }
  response.stats = view->stats;
  trace.Record("lookup", view->stats.lookup_ns);
  trace.Record("project", view->stats.project_ns);
  trace.Record("label", view->stats.label_ns);
  if (view->stats.prune_ns > 0) {
    // Only the legacy clone pipeline has a distinct prune pass; the
    // projection pipeline folds it into "project".
    trace.Record("prune", view->stats.prune_ns);
  }
  trace.Record("loosen", view->stats.loosen_ns);

  if (over_budget()) {
    FailClosed(&response, 504, "Gateway Timeout");
    return finalize();
  }

  // The closed-world contract: an empty view and a missing document are
  // indistinguishable to the requester.
  if (view->empty()) {
    response.http_status = 404;
    response.reason = "Not Found";
    response.content_type = "text/plain";
    response.body = "NotFound: document '" + request.uri +
                    "' is not registered\n";
    return finalize();
  }

  if (!request.query.empty()) {
    // Fault-injection site: the query evaluator runs over the pruned
    // view; a fault there must not fall back to the raw document.
    if (failpoint::ShouldFail("server.query")) {
      FailClosed(&response, 500, "Internal Server Error");
      return finalize();
    }
    std::string body;
    Status query_status;
    {
      auto span = trace.Span("query");
      xpath::VariableBindings vars;
      vars.emplace("user", xpath::Value(rq.user));
      vars.emplace("ip", xpath::Value(rq.ip));
      vars.emplace("sym", xpath::Value(rq.sym));
      Result<xpath::NodeSet> selected = xpath::SelectXPath(
          request.query, view->document->root(), &vars);
      if (!selected.ok()) {
        query_status = selected.status();
      } else {
        // The ONE result serializer both query paths share (the view is
        // already pruned, so no filter) — see rewrite/query_result.h.
        body = rewrite::BuildQueryResultBody(*selected, nullptr);
      }
    }
    if (!query_status.ok()) {
      response.http_status = 400;
      response.reason = "Bad Request";
      response.content_type = "text/plain";
      response.body = query_status.ToString() + "\n";
      return finalize();
    }
    if (over_budget()) {
      FailClosed(&response, 504, "Gateway Timeout");
      return finalize();
    }
    response.body = std::move(body);
    return finalize();
  }

  // Fault-injection site: a serializer fault must not emit a truncated
  // (hence possibly context-stripped) rendering of the view.
  if (failpoint::ShouldFail("server.serialize")) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }
  {
    auto span = trace.Span("serialize");
    xml::SerializeOptions serialize = config_.serialize;
    if (config_.emit_loosened_dtd) {
      serialize.doctype = xml::DoctypeMode::kInternal;
    }
    response.body = view->ToXml(serialize);
  }
  if (over_budget()) {
    FailClosed(&response, 504, "Gateway Timeout");
    return finalize();
  }
  if (cacheable) {
    auto span = trace.Span("cache_put");
    // Fault-injection site: an insert fault only degrades (the computed
    // view is still correct and still served) — it must never deny.
    if (!failpoint::ShouldFail("server.cache_put")) {
      cache_.Put(cache_key, repo->version(), response.body);
    }
  }
  return finalize();
}

ServerResponse SecureDocumentServer::HandleUpdate(
    const ServerRequest& request) const {
  obs::RequestTrace trace;
  instruments_.requests->Inc();
  instruments_.update_requests->Inc();
  ServerResponse response;
  std::string slow_trace;
  int64_t ops_requested = 0;
  int64_t ops_applied = 0;
  bool in_update = false;
  obs::RequestTrace::Clock::time_point update_begin{};
  // Fire-and-forget record of a non-positive outcome (denial, 4xx,
  // fail-closed 5xx).  The POSITIVE record is durable and is written
  // inline below, BEFORE the publish — never here.
  bool audited = false;
  auto finalize = [&]() -> ServerResponse {
    if (in_update) {
      trace.Record("update", NsBetween(update_begin,
                                       obs::RequestTrace::Clock::now()));
      in_update = false;
    }
    const int64_t total_ns = trace.ElapsedNs();
    const int64_t threshold_ms = obs::SlowTraceThresholdMs();
    if (threshold_ms >= 0 && total_ns >= threshold_ms * 1'000'000) {
      instruments_.slow_requests->Inc();
      slow_trace = trace.Summary();
    }
    if (audit_ != nullptr && !audited) {
      AuditEntry entry;
      entry.time = request.time;
      entry.user = request.user.empty() ? "anonymous" : request.user;
      entry.ip = request.ip;
      entry.sym = request.sym;
      entry.uri = request.uri;
      entry.query = "update ops=" + std::to_string(ops_requested);
      entry.http_status = response.http_status;
      entry.visible_nodes = ops_applied;
      entry.total_nodes = ops_requested;
      entry.trace = slow_trace;
      audit_->Record(std::move(entry));
    }
    if (response.http_status == 200) {
      instruments_.update_applied->Inc();
    } else if (response.http_status == 403) {
      instruments_.update_denied->Inc();
    } else if (response.http_status >= 500) {
      instruments_.update_failed->Inc();
    }
    instruments_.request_seconds->Observe(total_ns);
    instruments_.StatusCounter(response.http_status)->Inc();
    for (const auto& [stage, ns] : trace.spans()) {
      if (obs::Histogram* histogram = instruments_.Stage(stage)) {
        histogram->Observe(ns);
      }
    }
    return response;
  };

  Status auth_status;
  {
    auto span = trace.Span("auth");
    auth_status = users_->Authenticate(request.user, request.password);
  }
  if (!auth_status.ok()) {
    response.http_status = 401;
    response.reason = "Unauthorized";
    response.content_type = "text/plain";
    response.body = auth_status.ToString() + "\n";
    return finalize();
  }

  authz::Requester rq;
  rq.user = request.user.empty() ? "anonymous" : request.user;
  rq.ip = request.ip;
  rq.sym = request.sym;
  rq.time = request.time;

  Result<std::vector<authz::UpdateOp>> ops = ParseUpdateOps(request.body);
  if (!ops.ok()) {
    response.http_status = 400;
    response.reason = "Bad Request";
    response.content_type = "text/plain";
    response.body = ops.status().ToString() + "\n";
    return finalize();
  }
  ops_requested = static_cast<int64_t>(ops->size());

  in_update = true;
  update_begin = obs::RequestTrace::Clock::now();
  // Writers serialize here; readers never touch this mutex.  The batch
  // applies against the snapshot current at ITS turn, so concurrent
  // batches compose instead of overwriting each other's documents.
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  const std::shared_ptr<const Repository> repo = repository_snapshot();

  // Same lookup fault domain as the read path: a failed lookup aborts
  // fail-closed instead of applying the batch against a partial
  // (possibly permissive-by-omission) authorization state.
  if (!failpoint::Check("repo.find_document").ok()) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }
  const xml::Document* doc = repo->FindDocument(request.uri);
  if (doc == nullptr) {
    response.http_status = 404;
    response.reason = "Not Found";
    response.content_type = "text/plain";
    response.body = Status::NotFound("document '" + request.uri +
                                     "' is not registered")
                        .ToString() +
                    "\n";
    return finalize();
  }
  if (!failpoint::Check("repo.instance_auths").ok()) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }
  std::span<const authz::Authorization> instance =
      repo->InstanceAuths(request.uri);
  std::span<const authz::Authorization> schema;
  std::string dtd_uri = repo->DtdUriOf(request.uri);
  if (!dtd_uri.empty()) {
    if (!failpoint::Check("repo.schema_auths").ok()) {
      FailClosed(&response, 500, "Internal Server Error");
      return finalize();
    }
    schema = repo->SchemaAuths(dtd_uri);
  }
  authz::PolicyOptions policy =
      repo->PolicyOf(request.uri, config_.processor.policy);

  // The compiled policy automaton (shared with the read path's memo):
  // when it is fully decidable, the processor re-labels only the
  // mutated subtrees; otherwise it pays whole-document re-labels.
  std::shared_ptr<const analysis::PolicyAutomaton> automaton =
      AutomatonFor(*repo, request.uri, *doc, instance, schema);

  // Fault-injection site covering the whole check+mutate step.
  if (!failpoint::Check("update.apply").ok()) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }
  authz::UpdateProcessor processor(groups_, policy);
  Result<authz::UpdateOutcome> outcome =
      processor.Apply(*doc, instance, schema, rq, *ops,
                      config_.validate_updates, automaton.get());
  if (!outcome.ok()) {
    switch (outcome.status().code()) {
      case StatusCode::kPermissionDenied:
        // A policy decision, not a fault: the requester may learn WHY
        // their own write was refused.
        response.http_status = 403;
        response.reason = "Forbidden";
        response.content_type = "text/plain";
        response.body = outcome.status().ToString() + "\n";
        break;
      case StatusCode::kInvalidArgument:
      case StatusCode::kParseError:
      case StatusCode::kValidationError:
      case StatusCode::kNotFound:
        response.http_status = 400;
        response.reason = "Bad Request";
        response.content_type = "text/plain";
        response.body = outcome.status().ToString() + "\n";
        break;
      default:
        // Internal faults (including injected ones) fail closed.
        FailClosed(&response, 500, "Internal Server Error");
        break;
    }
    return finalize();
  }

  Result<std::unique_ptr<Repository>> next =
      repo->WithUpdatedDocument(request.uri, std::move(outcome->document));
  if (!next.ok()) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }
  // Fault-injection site between apply and publish: a fault here must
  // leave the OLD snapshot serving and no positive audit record.
  if (!failpoint::Check("update.publish").ok()) {
    FailClosed(&response, 500, "Internal Server Error");
    return finalize();
  }

  ops_applied = outcome->ops_applied;
  response.http_status = 200;
  response.reason = "OK";
  response.content_type = "text/xml";
  response.body = "<update-result ops=\"" + std::to_string(ops_applied) +
                  "\" incremental=\"" +
                  std::to_string(outcome->incremental_relabels) +
                  "\" full=\"" + std::to_string(outcome->full_relabels) +
                  "\"/>\n";

  // "No audit, no write": the positive record is acknowledged BEFORE
  // the mutated snapshot becomes visible.  Every failable step is
  // above; the publish below cannot fail.
  if (audit_ != nullptr) {
    AuditEntry entry;
    entry.time = request.time;
    entry.user = rq.user;
    entry.ip = rq.ip;
    entry.sym = rq.sym;
    entry.uri = request.uri;
    entry.query = "update ops=" + std::to_string(ops_requested);
    entry.http_status = 200;
    entry.visible_nodes = ops_applied;
    entry.total_nodes = ops_requested;
    entry.trace = slow_trace;
    audited = true;
    if (failpoint::ShouldFail("server.audit")) {
      FailClosed(&response, 500, "Internal Server Error");
      entry.http_status = 500;
      audit_->Record(std::move(entry));
      return finalize();
    }
    if (audit_->wal() != nullptr) {
      Status durable = audit_->RecordDurable(entry, config_.audit_durability);
      if (!durable.ok()) {
        instruments_.audit_denied->Inc();
        // Unlike the read path, kMemoryAudit does NOT let a WRITE
        // through on a failing sink: a lost view is re-computable, a
        // lost mutation record is not.  Writes always fail closed here.
        FailClosed(&response, 503, "Service Unavailable");
        entry.http_status = 503;
        audit_->RecordMemoryOnly(std::move(entry));
        return finalize();
      }
    } else {
      audit_->Record(std::move(entry));
    }
  }

  // Infallible publish: swap the snapshot, then drop exactly this
  // document's cached views (dirty-region invalidation — other
  // documents' entries survive, their doc_version is unchanged).
  {
    std::lock_guard<std::mutex> lock(repository_mutex_);
    repository_ = std::shared_ptr<const Repository>(std::move(*next));
  }
  int64_t invalidated = cache_.InvalidateDocument(request.uri);
  instruments_.update_cache_invalidations->Inc(invalidated);
  instruments_.update_ops->Inc(ops_applied);
  instruments_.update_relabel_incremental->Inc(outcome->incremental_relabels);
  instruments_.update_relabel_full->Inc(outcome->full_relabels);
  return finalize();
}

std::string SecureDocumentServer::HandleHttp(std::string_view raw_request,
                                             std::string_view ip,
                                             std::string_view sym) const {
  Result<HttpRequest> parsed = ParseHttpRequest(raw_request);
  if (!parsed.ok()) {
    instruments_.requests->Inc();
    instruments_.StatusCounter(400)->Inc();
    return BuildHttpResponse(400, "Bad Request", "text/plain",
                             parsed.status().ToString() + "\n");
  }
  // `POST /update/<uri>` routes to the write path; everything else is
  // the read path.  With updates disabled, POST keeps its historical
  // 405 — the endpoint simply does not exist.
  const bool is_update = parsed->method == "POST" &&
                         config_.enable_updates &&
                         (parsed->path == "/update" ||
                          parsed->path.rfind("/update/", 0) == 0);
  if (!is_update && parsed->method != "GET" && parsed->method != "HEAD") {
    instruments_.requests->Inc();
    instruments_.StatusCounter(405)->Inc();
    return BuildHttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  }

  ServerRequest request;
  request.ip = std::string(ip);
  request.sym = std::string(sym);
  if (is_update) {
    // Path after "/update/"; "POST /update" with no document is a 404
    // shaped exactly like an unknown document (closed world).
    request.uri = parsed->path.size() > 8 ? parsed->path.substr(8)
                                          : std::string();
    request.body = parsed->body;
  } else {
    request.uri = parsed->path;
    if (!request.uri.empty() && request.uri.front() == '/') {
      request.uri.erase(request.uri.begin());
    }
    auto query_it = parsed->query.find("query");
    if (query_it != parsed->query.end()) request.query = query_it->second;
  }

  auto auth_it = parsed->headers.find("authorization");
  if (auth_it != parsed->headers.end()) {
    Result<std::pair<std::string, std::string>> credentials =
        ParseBasicAuth(auth_it->second);
    if (!credentials.ok()) {
      instruments_.requests->Inc();
      instruments_.StatusCounter(401)->Inc();
      return BuildHttpResponse(401, "Unauthorized", "text/plain",
                               credentials.status().ToString() + "\n");
    }
    request.user = credentials->first;
    request.password = credentials->second;
  }

  ServerResponse response = is_update ? HandleUpdate(request)
                                      : Handle(request);
  return BuildHttpResponse(
      response.http_status, response.reason, response.content_type,
      parsed->method == "HEAD" ? std::string_view() : response.body_view());
}

}  // namespace server
}  // namespace xmlsec
