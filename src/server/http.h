#ifndef XMLSEC_SERVER_HTTP_H_
#define XMLSEC_SERVER_HTTP_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xmlsec {
namespace server {

/// A parsed HTTP request head (the paper's access channel, §7: documents
/// are requested via HTTP).  Transport is out of scope: callers hand the
/// raw request text plus the connection's addresses to the document
/// server.
struct HttpRequest {
  std::string method;   ///< e.g. "GET"
  std::string path;     ///< decoded path, no query string
  std::string version;  ///< e.g. "HTTP/1.0"
  /// Header fields, names lower-cased.
  std::map<std::string, std::string> headers;
  /// Decoded query parameters.
  std::map<std::string, std::string> query;
  /// Entity body (POST /update).  Clipped to Content-Length when the
  /// header is present; everything after the blank line otherwise.
  std::string body;
};

/// Parses an HTTP/1.0 / 1.1 request: request line + headers, plus the
/// entity body after the blank line (the write path POSTs update
/// batches).  Percent-decodes the path and query parameters.
///
/// Hardened against adversarial input: rejects embedded NUL bytes,
/// requests missing the terminating blank line (truncated reads),
/// oversized input, unbounded header counts, control characters in the
/// request target, malformed percent-escapes, and bodies shorter than
/// their declared Content-Length — each with a clean
/// `ParseError`/`InvalidArgument` instead of a silent mis-parse.
Result<HttpRequest> ParseHttpRequest(std::string_view text);

/// Completeness scan of an accumulating raw request buffer — how the
/// transports (blocking reader and event loop) decide when to stop
/// reading and dispatch, without parsing the full request per byte
/// batch.
struct HttpRequestScan {
  bool head_complete = false;  ///< blank line seen
  size_t head_end = 0;         ///< offset one past the blank line
  /// Declared Content-Length (0 when absent or malformed — a malformed
  /// value is left for `ParseHttpRequest` to reject after dispatch).
  uint64_t content_length = 0;
  /// Head complete and `content_length` body bytes buffered.
  bool complete = false;
};
HttpRequestScan ScanHttpRequest(std::string_view data);

/// Extracts "user:password" from a `Basic` Authorization header value.
/// Returns InvalidArgument on malformed input.
Result<std::pair<std::string, std::string>> ParseBasicAuth(
    std::string_view header_value);

/// Renders a response with the given status code/reason, content type,
/// and body (adds Content-Length).  `extra_headers`, when non-empty,
/// is spliced verbatim into the header block (each line must end in
/// "\r\n", e.g. "Retry-After: 1\r\n").
std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers = "");

/// RFC 4648 base64.  `Base64Decode` rejects invalid characters, data
/// after padding, excess padding, and truncated final groups (a single
/// trailing symbol encodes fewer than 8 bits).
std::string Base64Encode(std::string_view data);
Result<std::string> Base64Decode(std::string_view data);

/// Percent-decoding of URI components ("%41" -> "A", "+" -> " ").
/// Fails with `InvalidArgument` on truncated or non-hex escapes and on
/// escapes decoding to NUL (instead of silently passing them through).
Result<std::string> PercentDecode(std::string_view text);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_HTTP_H_
