#ifndef XMLSEC_SERVER_DOCUMENT_SERVER_H_
#define XMLSEC_SERVER_DOCUMENT_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "analysis/policy_automaton.h"
#include "authz/processor.h"
#include "authz/subject.h"
#include "authz/update.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/rewriter.h"
#include "server/audit_log.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "server/view_cache.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace server {

/// What the server does while the durable audit sink is failing (disk
/// full, I/O error, queue overflow).  Either way the degradation is
/// visible in `/healthz` (`degraded`) and the `xmlsec_audit_degraded`
/// gauge.
enum class AuditDegradedMode {
  /// Deny positive accesses with `503` (empty body) until the sink
  /// recovers — the strict reading of "no audit, no view".  Default.
  kFailClosed,
  /// Keep serving; accesses are recorded in the bounded in-memory
  /// trail only (lost on crash, drainable via the audit API).
  kMemoryAudit,
};

/// How `?query=` requests are answered.
enum class QueryPathMode {
  /// Materialize the requester's view, then evaluate the query over it
  /// (evaluation after enforcement — always available).
  kMaterialize,
  /// Rewrite the query with accessibility guards and evaluate it over
  /// the ORIGINAL document through the policy automaton's visibility
  /// oracle — no view is built.  Falls back to kMaterialize per request
  /// whenever rewriting is unavailable (no automaton, unsupported
  /// construct, schema mismatch, oracle failure); the fallback is
  /// counted, never an error.
  kRewrite,
};

/// Server configuration.
struct ServerConfig {
  authz::ProcessorOptions processor;
  xml::SerializeOptions serialize;
  /// Append the loosened DTD as an internal subset of served views, so a
  /// client can re-validate what it received (paper §7: "the resulting
  /// XML document, together with the loosened DTD, can then be
  /// transmitted").
  bool emit_loosened_dtd = true;
  /// Number of rendered views memoized per server (0 disables the
  /// cache).  Entries invalidate automatically when the repository
  /// changes; the cache is bypassed entirely while any time-limited
  /// authorization is loaded.
  size_t view_cache_capacity = 0;
  /// Per-request wall-clock budget in milliseconds.  When a request is
  /// still being processed past its budget, it is aborted at the next
  /// stage boundary with `504 Gateway Timeout` (empty body) instead of
  /// stalling a worker indefinitely.  `0` disables the budget; a
  /// negative value expires every request immediately (test hook).
  int request_budget_ms = 0;
  /// Acknowledgment level required before a positive (200) response
  /// leaves the server when the audit log routes through a WAL:
  /// `kEnqueue` accepts queue admission, `kFsync` waits for the
  /// group commit (see `AuditDurability`).  Denials and errors are
  /// always recorded fire-and-forget.
  AuditDurability audit_durability = AuditDurability::kEnqueue;
  /// Behaviour while the durable audit sink is failing.
  AuditDegradedMode audit_degraded_mode = AuditDegradedMode::kFailClosed;
  /// How `?query=` requests are served (see `QueryPathMode`).
  QueryPathMode query_path = QueryPathMode::kMaterialize;
  /// Whether `POST /update/<uri>` is served (the write path).  Off by
  /// default: a deployment must opt in to mutation over HTTP.
  bool enable_updates = false;
  /// Re-validate the mutated document against its DTD before publishing
  /// (the update batch fails with 400 on a validity violation).
  bool validate_updates = true;
  /// Metrics registry the server instruments (per-stage latency
  /// histograms, per-status response counters, cache hit/miss, slow
  /// requests).  nullptr selects the process-wide
  /// `obs::DefaultRegistry()`; tests pass their own for isolation.  The
  /// registry must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
};

/// A request to the secure document server, independent of transport.
struct ServerRequest {
  std::string user;      ///< "" or "anonymous" for unauthenticated
  std::string password;
  std::string ip;        ///< connection's numeric address
  std::string sym;       ///< connection's symbolic name
  std::string uri;       ///< requested document URI
  std::string query;     ///< optional XPath evaluated over the view
  int64_t time = 0;      ///< request time (authorization validity windows)
  /// Raw entity body of a `POST /update/<uri>` request: an XML batch
  /// document (see `ParseUpdateBody`).  Empty for reads.
  std::string body;
};

/// Transport-level outcome.
struct ServerResponse {
  int http_status = 200;
  std::string reason = "OK";
  std::string content_type = "text/xml";
  /// Rendered body of a freshly computed response.  A view-cache hit
  /// sets `shared_body` instead — the cached rendering is shared, not
  /// copied per request — so readers go through `body_view()`.
  std::string body;
  std::shared_ptr<const std::string> shared_body;
  authz::ViewStats stats;

  std::string_view body_view() const {
    return shared_body != nullptr ? std::string_view(*shared_body)
                                  : std::string_view(body);
  }
};

/// The complete server-side enforcement point of the paper (§7): it
/// authenticates the requester, resolves the document and its DTD and
/// authorization sets in the repository, runs the security processor,
/// and unparses the resulting view.
///
/// Queries (§8 future work) are supported by evaluating an XPath
/// expression *over the computed view* — evaluation after enforcement
/// guarantees a query can never observe data the view hides.
class SecureDocumentServer {
 public:
  /// Non-owning construction: `repository` must outlive the server (or
  /// its replacement via `SwapRepository`).
  SecureDocumentServer(const Repository* repository,
                       const UserDirectory* users,
                       const authz::GroupStore* groups,
                       ServerConfig config = {});

  /// Owning construction for hot-reloadable deployments.
  SecureDocumentServer(std::shared_ptr<const Repository> repository,
                       const UserDirectory* users,
                       const authz::GroupStore* groups,
                       ServerConfig config = {});

  /// Unbinds any WAL metrics `set_audit_log` bound: they point into
  /// this server's registry, which may die before the WAL does.
  ~SecureDocumentServer();

  /// Full request cycle; never returns a C++ error — failures map to
  /// HTTP-style statuses in the response.
  ///
  /// Fail-closed contract: every internal failure (including injected
  /// failpoints — see common/failpoint.h) yields a denial-shaped `5xx`
  /// response with an EMPTY body; no partial or unpruned view, and no
  /// internal error detail, ever leaves the server.  Each outcome is
  /// recorded in the attached `AuditLog`.
  ServerResponse Handle(const ServerRequest& request) const;

  /// Parses a raw HTTP request (head + body) and serves it.  The
  /// connection addresses come from the transport.  The document URI is
  /// the request path without its leading '/'; credentials come from
  /// Basic auth; an XPath query may be passed as `?query=...`.  `POST
  /// /update/<uri>` routes to the write path (`HandleUpdate`) when
  /// `config.enable_updates` is set; both listener modes share this
  /// entry point, so the write path exists exactly once.
  std::string HandleHttp(std::string_view raw_request, std::string_view ip,
                         std::string_view sym) const;

  /// The audited, fail-closed write path: authenticates the requester,
  /// parses the `<update>` batch in `request.body`, applies it through
  /// `authz::UpdateProcessor` against the current repository snapshot
  /// (write-labeling every touched and created node; incremental
  /// re-labeling when the document's compiled policy automaton is fully
  /// decidable), durably audits the accepted batch, and only then
  /// publishes the mutated document (RCU swap) and drops the document's
  /// cached views.  Order is load-bearing: every failable step —
  /// including the `update.apply` / `update.publish` failpoints — runs
  /// BEFORE the audit record is acknowledged, and the publish itself is
  /// infallible, so "no audit, no write" holds at every fault site.
  /// Writers serialize on an internal mutex; readers are never blocked
  /// (they serve from the previous snapshot until the swap).
  ServerResponse HandleUpdate(const ServerRequest& request) const;

  /// Computes the view of `rq` on `uri` (no authentication — callers
  /// that already authenticated, e.g. tests and benchmarks).
  Result<authz::View> ComputeView(const authz::Requester& rq,
                                  std::string_view uri) const;

  /// The registry this server instruments (never nullptr).
  obs::MetricsRegistry* metrics() const { return instruments_.registry; }

  /// Cache statistics (zero when caching is disabled).
  const ViewCache& view_cache() const { return cache_; }

  /// Attaches an audit trail; every handled request is recorded.  The
  /// log must outlive the server.  Pass nullptr to detach.  When the
  /// log routes through an `AuditWal` (attach the WAL BEFORE calling
  /// this), the WAL's health metrics are bound into this server's
  /// registry.
  void set_audit_log(AuditLog* log);

  /// Atomic hot-reload (RCU): publishes `next` as the repository every
  /// subsequent request snapshots; requests already in flight finish
  /// on the snapshot they took.  The view and automaton caches
  /// invalidate naturally — the new repository carries a version no
  /// cached entry was stamped with.  Never pass nullptr.
  void SwapRepository(std::shared_ptr<const Repository> next);

  /// The repository snapshot a request arriving now would serve from.
  std::shared_ptr<const Repository> repository_snapshot() const;

  /// True while the attached audit log reports its durable sink
  /// failing — surfaced as `degraded` in `/healthz`.
  bool audit_degraded() const {
    return audit_ != nullptr && audit_->degraded();
  }

 private:
  /// Metric handles, resolved once at construction (the hot path never
  /// does a name lookup).  See DESIGN.md "Observability" for the metric
  /// naming scheme.
  struct Instruments {
    obs::MetricsRegistry* registry = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* slow_requests = nullptr;
    obs::Counter* cache_bypass = nullptr;
    obs::Histogram* request_seconds = nullptr;
    /// stage name -> duration histogram (auth, cache_get, lookup,
    /// clone, label, prune, loosen, query, serialize, cache_put,
    /// audit).
    std::map<std::string_view, obs::Histogram*> stages;
    /// Compiled-labeling instrumentation (LabelingMode::kCompiled):
    /// automaton (re)compiles and failures, nodes labeled by table
    /// lookup vs. through the residual XPath evaluations, requests that
    /// fell back to the XPath path on a schema mismatch, and the state
    /// count of the most recently compiled automaton.
    obs::Counter* automaton_compiles = nullptr;
    obs::Counter* automaton_compile_failures = nullptr;
    obs::Counter* compiled_table_nodes = nullptr;
    obs::Counter* compiled_residual_nodes = nullptr;
    obs::Counter* compiled_fallbacks = nullptr;
    obs::Gauge* automaton_states = nullptr;
    /// Query-rewrite path (QueryPathMode::kRewrite): queries answered
    /// without materializing the view, rewriter (re)builds on policy
    /// change, and per-reason fallbacks to the materialized path.
    obs::Counter* rewrite_served = nullptr;
    obs::Counter* rewrite_compiles = nullptr;
    std::map<std::string_view, obs::Counter*> rewrite_fallbacks;
    /// Durable-audit health (see server/audit_wal.h): bound into the
    /// attached WAL by `set_audit_log` so the scrape always carries the
    /// families, even before (or without) a WAL.
    obs::Gauge* audit_queue_depth = nullptr;
    obs::Counter* audit_fsyncs = nullptr;
    obs::Counter* audit_sink_failures = nullptr;
    obs::Gauge* audit_degraded = nullptr;
    /// Positive accesses denied (or degraded) because their audit
    /// record could not be durably acknowledged.
    obs::Counter* audit_denied = nullptr;
    /// Write path (`POST /update`): batch outcomes, ops applied, the
    /// incremental-vs-full re-labeling split, and cached views dropped
    /// by dirty-region invalidation after a publish.
    obs::Counter* update_requests = nullptr;
    obs::Counter* update_applied = nullptr;
    obs::Counter* update_denied = nullptr;
    obs::Counter* update_failed = nullptr;
    obs::Counter* update_ops = nullptr;
    obs::Counter* update_relabel_incremental = nullptr;
    obs::Counter* update_relabel_full = nullptr;
    obs::Counter* update_cache_invalidations = nullptr;
    /// Lazily-populated per-status response counters
    /// (`xmlsec_http_responses_total{status="..."}`).
    mutable std::mutex status_mutex;
    mutable std::map<int, obs::Counter*> status_counters;

    obs::Counter* StatusCounter(int http_status) const;
    obs::Histogram* Stage(std::string_view name) const;
  };

  /// The cache key a request normalizes to, plus whether the request
  /// must bypass the cache because an applicable authorization path
  /// references `$time`.
  struct CacheKeyInfo {
    ViewCache::Key key;
    bool time_dependent = false;
  };

  /// Normalizes the requester to an effective-subject cache key: the
  /// key carries a fingerprint of *which* authorization subjects the
  /// requester matches rather than the raw (user, ip, sym) triple, so
  /// requesters that are indistinguishable to the policy share one
  /// cached view.  The raw triple is kept only when an applicable
  /// authorization path mentions an XPath requester variable (the view
  /// then depends on the identity itself, not just on what it matches).
  CacheKeyInfo NormalizedCacheKey(const Repository& repo,
                                  const authz::Requester& rq,
                                  const std::string& uri) const;

  /// `ComputeView` against an explicit repository snapshot — the whole
  /// request pipeline reads ONE snapshot, so a concurrent
  /// `SwapRepository` can never show it a half-consistent state.
  Result<authz::View> ComputeViewOn(const Repository& repo,
                                    const authz::Requester& rq,
                                    std::string_view uri) const;

  /// One memoized policy automaton per document URI, compiled from the
  /// document's DTD and its (document, DTD) authorization sets at a
  /// repository version.  A null `automaton` memoizes a failed compile
  /// (state-cap overflow, rootless DTD): the document keeps serving
  /// through the XPath path without retrying the compile per request.
  struct AutomatonEntry {
    uint64_t version = 0;
    std::shared_ptr<const analysis::PolicyAutomaton> automaton;
  };

  /// Returns the cached automaton for `uri`, (re)compiling when the
  /// repository changed since the cached entry.  nullptr when the
  /// document has no DTD or the policy does not compile.
  std::shared_ptr<const analysis::PolicyAutomaton> AutomatonFor(
      const Repository& repo, const std::string& uri,
      const xml::Document& doc,
      std::span<const authz::Authorization> instance,
      std::span<const authz::Authorization> schema) const;

  /// One memoized query rewriter per document URI, stamped with the
  /// repository version it was built at (next to the automaton cache —
  /// same lifecycle, same lock).
  struct RewriterEntry {
    uint64_t version = 0;
    std::shared_ptr<const rewrite::QueryRewriter> rewriter;
  };

  /// The cached rewriter for `uri`, rebuilt when the repository moved.
  /// `automaton` must be non-null (the caller fell back already
  /// otherwise).
  std::shared_ptr<const rewrite::QueryRewriter> RewriterFor(
      const Repository& repo, const std::string& uri,
      std::shared_ptr<const analysis::PolicyAutomaton> automaton) const;

  /// RCU-published repository: readers snapshot the `shared_ptr` once
  /// per request (one small critical section), writers swap it whole.
  /// `mutable`: the write path (`HandleUpdate`, const like every
  /// request entry point) publishes the post-batch snapshot.
  mutable std::mutex repository_mutex_;
  mutable std::shared_ptr<const Repository> repository_;
  /// Serializes write batches (`HandleUpdate`): each batch applies
  /// against the snapshot current at its turn, so two concurrent writers
  /// cannot publish snapshots that each miss the other's mutation.
  /// Readers never take this mutex.
  mutable std::mutex update_mutex_;
  const UserDirectory* users_;
  const authz::GroupStore* groups_;
  ServerConfig config_;
  /// Render cache; locks internally per shard, so concurrent
  /// transports (the TCP listener serves from many threads) never
  /// serialize on a server-global cache mutex.
  mutable ViewCache cache_;
  mutable std::mutex automata_mutex_;
  mutable std::map<std::string, AutomatonEntry, std::less<>> automata_;
  mutable std::map<std::string, RewriterEntry, std::less<>> rewriters_;
  AuditLog* audit_ = nullptr;
  Instruments instruments_;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_DOCUMENT_SERVER_H_
