#ifndef XMLSEC_SERVER_VIEW_CACHE_H_
#define XMLSEC_SERVER_VIEW_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "obs/metrics.h"

namespace xmlsec {
namespace server {

/// LRU cache of rendered views, keyed by (document URI, requester).
///
/// The paper computes views on line per request (§7); since a view
/// depends only on the document, the policy, and the requester triple, a
/// server can memoize the rendered result.  Entries carry the repository
/// `version` they were computed against and are dropped when the
/// repository has changed since (documents or authorizations added).
///
/// Requests with time-limited authorizations must bypass the cache (the
/// server checks this; see `Repository::has_time_limited_auths`).
class ViewCache {
 public:
  /// `capacity` = maximum number of cached views (0 disables caching).
  explicit ViewCache(size_t capacity) : capacity_(capacity) {}

  struct Key {
    std::string uri;
    std::string user;
    std::string ip;
    std::string sym;

    friend bool operator<(const Key& a, const Key& b) {
      return std::tie(a.uri, a.user, a.ip, a.sym) <
             std::tie(b.uri, b.user, b.ip, b.sym);
    }
  };

  /// Cached rendered body for `key`, when present and computed against
  /// `version`.  Refreshes LRU order.
  std::optional<std::string> Get(const Key& key, uint64_t version);

  /// Stores a rendered body.  No-op when capacity is 0.
  void Put(const Key& key, uint64_t version, std::string body);

  void Clear();

  /// Mirrors hit/miss/eviction tallies into registry counters (the
  /// observability subsystem).  Pass nullptrs to detach.  The counters
  /// must outlive the cache; increments happen under the owning
  /// server's cache mutex, so the relaxed counter hot path is enough.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  size_t size() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  /// Entries dropped: LRU capacity evictions plus stale invalidations
  /// (entry computed against an older repository version).
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t version;
    std::string body;
    std::list<Key>::iterator lru_position;
  };

  size_t capacity_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // Front = most recently used.
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_VIEW_CACHE_H_
