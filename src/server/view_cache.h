#ifndef XMLSEC_SERVER_VIEW_CACHE_H_
#define XMLSEC_SERVER_VIEW_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "obs/metrics.h"

namespace xmlsec {
namespace server {

/// Sharded LRU cache of rendered views, keyed by (document URI,
/// effective subject).
///
/// The paper computes views on line per request (§7); since a view
/// depends only on the document, the policy, and what the requester
/// *matches*, a server can memoize the rendered result.  Entries carry
/// the repository `version` they were computed against and are dropped
/// when the repository has changed since (documents or authorizations
/// added).
///
/// The cache locks internally: the key space is split across shards,
/// each with its own mutex, map, and LRU list, so concurrent transports
/// never serialize on one global cache lock.  Capacity is enforced per
/// shard (`capacity / shards`, rounded up), so LRU order is
/// approximate across shards; small caches (fewer than 8 entries per
/// requested shard) collapse to a single shard and keep strict LRU.
/// Callers that need strict order at any capacity pass `shards = 1`.
///
/// Requests with time-limited authorizations must bypass the cache (the
/// server checks this; see `Repository::has_time_limited_auths`).
class ViewCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// `capacity` = maximum number of cached views (0 disables caching).
  explicit ViewCache(size_t capacity, size_t shards = kDefaultShards);

  struct Key {
    std::string uri;
    /// Raw requester triple.  Left empty by the server when the
    /// normalized `subject` fingerprint alone determines the view (no
    /// applicable authorization path mentions `$user`/`$ip`/`$sym`).
    std::string user;
    std::string ip;
    std::string sym;
    /// Effective-subject fingerprint: one bit per action-matching
    /// authorization, set iff the requester matches its subject.  Two
    /// requesters with the same fingerprint receive byte-identical
    /// views, so they share one entry (see DESIGN.md, "Cache-key
    /// normalization").
    std::string subject;
    /// The request's `?query=` string.  The server only caches plain
    /// GETs (empty query), so this is belt-and-braces: even if that
    /// gating ever regresses, a cached full-view rendering can never be
    /// served for a query request (or vice versa, or across queries).
    std::string query;

    friend bool operator<(const Key& a, const Key& b) {
      return std::tie(a.uri, a.user, a.ip, a.sym, a.subject, a.query) <
             std::tie(b.uri, b.user, b.ip, b.sym, b.subject, b.query);
    }
  };

  /// Cached rendered body for `key`, when present and computed against
  /// `version`; nullptr on miss.  Refreshes LRU order.  The body is
  /// shared, not copied — a hit is allocation-free.
  std::shared_ptr<const std::string> Get(const Key& key, uint64_t version);

  /// Stores a rendered body.  No-op when capacity is 0.
  void Put(const Key& key, uint64_t version, std::string body);
  void Put(const Key& key, uint64_t version,
           std::shared_ptr<const std::string> body);

  /// Drops every entry.  Dropped entries count as evictions — a flush
  /// is an invalidation, and flushing must not make the eviction
  /// counters understate cache churn.
  void Clear();

  /// Dirty-region invalidation for the write path: drops only entries
  /// keyed by `uri`, leaving every other document's cached views in
  /// place.  Returns the number of entries dropped (also counted as
  /// evictions).  Entries are additionally version-stamped per
  /// document, so this is an eager reclaim on top of the stale-stamp
  /// check, not the only line of defense.
  int64_t InvalidateDocument(std::string_view uri);

  /// Mirrors hit/miss/eviction tallies into registry counters (the
  /// observability subsystem).  Pass nullptrs to detach.  The counters
  /// must outlive the cache; bind before concurrent use (the pointers
  /// themselves are not synchronized).
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  size_t size() const;
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Entries dropped: LRU capacity evictions, stale invalidations
  /// (entry computed against an older repository version), and flushes
  /// via `Clear()`.
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t version;
    std::shared_ptr<const std::string> body;
    std::list<Key>::iterator lru_position;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, Entry> entries;
    std::list<Key> lru;  // Front = most recently used.
  };

  Shard& ShardFor(const Key& key);

  size_t capacity_;
  size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_VIEW_CACHE_H_
