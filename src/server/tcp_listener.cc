#include "server/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xmlsec {
namespace server {

namespace {

constexpr size_t kMaxRequestHead = 64 * 1024;

std::string PeerAddress(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "0.0.0.0";
  }
  char buffer[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &addr.sin_addr, buffer, sizeof(buffer)) == nullptr) {
    return "0.0.0.0";
  }
  return buffer;
}

}  // namespace

TcpHttpListener::~TcpHttpListener() { Stop(); }

Status TcpHttpListener::Start(uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("listener already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + strerror(errno));
  }
  int reuse = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status out = Status::Internal(std::string("bind(): ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return out;
  }
  if (listen(listen_fd_, 16) != 0) {
    Status out =
        Status::Internal(std::string("listen(): ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return out;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpHttpListener::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // Unblock accept().
  shutdown(listen_fd_, SHUT_RDWR);
  close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
}

void TcpHttpListener::AcceptLoop() {
  while (!stopping_.load()) {
    int connection = accept(listen_fd_, nullptr, nullptr);
    if (connection < 0) {
      if (stopping_.load() || errno == EBADF || errno == EINVAL) return;
      continue;  // Transient (EINTR, ECONNABORTED).
    }
    ServeConnection(connection);
    close(connection);
  }
}

void TcpHttpListener::ServeConnection(int connection_fd) {
  std::string head;
  char buffer[4096];
  while (head.size() < kMaxRequestHead &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = read(connection_fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    head.append(buffer, static_cast<size_t>(n));
  }
  if (head.empty()) return;

  std::string ip = PeerAddress(connection_fd);
  std::string sym = ip == "127.0.0.1" ? sym_for_loopback_ : "";
  std::string response = server_->HandleHttp(head, ip, sym);
  requests_served_.fetch_add(1);

  size_t written = 0;
  while (written < response.size()) {
    ssize_t n = write(connection_fd, response.data() + written,
                      response.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

Result<std::string> FetchHttp(uint16_t port, std::string_view request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status out =
        Status::Internal(std::string("connect(): ") + strerror(errno));
    close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

}  // namespace server
}  // namespace xmlsec
