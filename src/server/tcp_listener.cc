#include "server/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "server/event_loop.h"
#include "server/http.h"

namespace xmlsec {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

std::string PeerAddress(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "0.0.0.0";
  }
  char buffer[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &addr.sin_addr, buffer, sizeof(buffer)) == nullptr) {
    return "0.0.0.0";
  }
  return buffer;
}

/// Milliseconds left until `deadline`, clamped to >= 0; -1 when the
/// deadline is disabled (timeout_ms <= 0).
int RemainingMs(int timeout_ms, Clock::time_point deadline) {
  if (timeout_ms <= 0) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 60'000) return 60'000;
  return static_cast<int>(left);
}

timeval MsToTimeval(int ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<decltype(tv.tv_usec)>((ms % 1000) * 1000);
  }
  return tv;
}

/// Listener-served endpoint probe (`/healthz`, `/metrics`): these are
/// answered by the listener itself (they must keep working while the
/// document path is faulted or overloaded).
bool IsLocalEndpoint(std::string_view head, std::string_view prefix) {
  if (!StartsWith(head, prefix)) return false;
  if (head.size() == prefix.size()) return true;
  char next = head[prefix.size()];
  return next == ' ' || next == '?' || next == '\r' || next == '\n';
}

bool IsHealthzRequest(std::string_view head) {
  return IsLocalEndpoint(head, "GET /healthz");
}

bool IsMetricsRequest(std::string_view head) {
  return IsLocalEndpoint(head, "GET /metrics");
}

bool IsReloadRequest(std::string_view head) {
  return IsLocalEndpoint(head, "POST /admin/reload");
}

}  // namespace

TcpHttpListener::TcpHttpListener(const SecureDocumentServer* server,
                                 std::string sym_for_loopback,
                                 ListenerConfig config)
    : server_(server),
      sym_for_loopback_(std::move(sym_for_loopback)),
      config_(config) {
  registry_ = config_.metrics != nullptr ? config_.metrics
                                         : obs::DefaultRegistry();
  served_ = registry_->GetCounter("xmlsec_listener_requests_total",
                                  "connections served through the worker "
                                  "pool (excluding healthz/metrics)");
  shed_ = registry_->GetCounter(
      "xmlsec_listener_shed_total",
      "connections shed with 503 Retry-After (accept queue full)");
  read_timeouts_c_ = registry_->GetCounter(
      "xmlsec_listener_read_timeouts_total",
      "request heads that missed the read deadline (408, slowloris)");
  write_timeouts_c_ = registry_->GetCounter(
      "xmlsec_listener_write_timeouts_total",
      "responses dropped on the write deadline (slow reader)");
  oversized_heads_c_ = registry_->GetCounter(
      "xmlsec_listener_oversized_heads_total",
      "request heads rejected with 431 (incremental head cap)");
  oversized_bodies_c_ = registry_->GetCounter(
      "xmlsec_listener_oversized_bodies_total",
      "request bodies rejected with 413 (declared or streamed past the "
      "body cap)");
  health_checks_c_ = registry_->GetCounter(
      "xmlsec_listener_health_checks_total", "GET /healthz probes served");
  metrics_scrapes_c_ = registry_->GetCounter(
      "xmlsec_listener_metrics_scrapes_total", "GET /metrics scrapes served");
  reloads_c_ = registry_->GetCounter(
      "xmlsec_listener_reloads_total",
      "successful POST /admin/reload repository swaps");
  reload_failures_c_ = registry_->GetCounter(
      "xmlsec_listener_reload_failures_total",
      "POST /admin/reload attempts rejected (build/validation failure; "
      "the previous repository stays live)");
  status_408_ = registry_->GetCounter("xmlsec_http_responses_total",
                                      "HTTP responses by status code",
                                      {{"status", "408"}});
  status_413_ = registry_->GetCounter("xmlsec_http_responses_total",
                                      "HTTP responses by status code",
                                      {{"status", "413"}});
  status_431_ = registry_->GetCounter("xmlsec_http_responses_total",
                                      "HTTP responses by status code",
                                      {{"status", "431"}});
  status_503_ = registry_->GetCounter("xmlsec_http_responses_total",
                                      "HTTP responses by status code",
                                      {{"status", "503"}});
  queue_depth_g_ = registry_->GetGauge(
      "xmlsec_listener_queue_depth",
      "accepted connections waiting for a free worker");
  workers_busy_g_ = registry_->GetGauge(
      "xmlsec_listener_workers_busy", "workers serving a connection now");
  obs::RegisterFailpointCollector(registry_);
  CaptureBaselines();
}

void TcpHttpListener::CaptureBaselines() {
  served_base_ = served_->Value();
  shed_base_ = shed_->Value();
  read_timeouts_base_ = read_timeouts_c_->Value();
  write_timeouts_base_ = write_timeouts_c_->Value();
  oversized_heads_base_ = oversized_heads_c_->Value();
  oversized_bodies_base_ = oversized_bodies_c_->Value();
  health_checks_base_ = health_checks_c_->Value();
  metrics_scrapes_base_ = metrics_scrapes_c_->Value();
  reloads_base_ = reloads_c_->Value();
  reload_failures_base_ = reload_failures_c_->Value();
}

TcpHttpListener::~TcpHttpListener() { Stop(); }

Status TcpHttpListener::Start(uint16_t port) {
  if (listen_fd_ >= 0 || !workers_.empty() || !loops_.empty()) {
    return Status::InvalidArgument("listener already started");
  }
  if (config_.event_loops > 0) return StartEventLoops(port);
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + strerror(errno));
  }
  int reuse = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status out = Status::Internal(std::string("bind(): ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return out;
  }
  int backlog = static_cast<int>(std::clamp<size_t>(
      config_.accept_queue_limit, 16, 128));
  if (listen(listen_fd_, backlog) != 0) {
    Status out =
        Status::Internal(std::string("listen(): ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return out;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  draining_.store(false);
  // Registry counters are monotonic (Prometheus semantics); the
  // accessors report per-Start deltas instead of resetting.
  CaptureBaselines();
  queue_depth_g_->Set(0);
  workers_busy_g_->Set(0);

  int worker_count = std::max(1, config_.worker_threads);
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpHttpListener::Stop() {
  if (!loops_.empty()) {
    StopEventLoops();
    return;
  }
  if (listen_fd_ < 0 && workers_.empty() && !accept_thread_.joinable()) {
    return;  // Already stopped; idempotent.
  }
  draining_.store(true);
  stopping_.store(true);
  // Unblock accept() (on Linux shutdown() on a listening socket makes a
  // blocked accept return), then join before closing the fd so the
  // accept thread never touches a recycled descriptor.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();

  // Graceful drain: queued and in-flight requests may finish within the
  // drain budget...
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait_for(
        lock,
        std::chrono::milliseconds(std::max(0, config_.drain_timeout_ms)),
        [this] { return queue_.empty() && in_flight_fds_.empty(); });
    // ... then the hard deadline: drop what is still queued and yank the
    // transport from under what is still running (their poll/recv wakes
    // immediately and the worker bails out).
    for (int fd : queue_) close(fd);
    queue_.clear();
    for (int fd : in_flight_fds_) shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  draining_.store(false);
}

Status TcpHttpListener::StartEventLoops(uint16_t port) {
  const int loop_count = std::max(1, config_.event_loops);
  const int backlog =
      static_cast<int>(std::clamp<size_t>(config_.accept_queue_limit, 16, 128));

  // One SO_REUSEPORT listen socket per loop: the kernel shards incoming
  // connections across them by 4-tuple hash, so accept itself never
  // serializes on a shared queue.  The first socket discovers the port
  // (the caller may pass 0); the rest bind the discovered port.
  auto open_listen = [&](uint16_t bind_port, bool reuseport,
                         int* out_fd) -> Status {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket(): ") + strerror(errno));
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuseport &&
        setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      close(fd);
      return Status::Unimplemented("SO_REUSEPORT unavailable");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(bind_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, backlog) != 0) {
      Status out =
          Status::Internal(std::string("bind/listen(): ") + strerror(errno));
      close(fd);
      return out;
    }
    socklen_t len = sizeof(addr);
    getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (bind_port == 0) port_ = ntohs(addr.sin_port);
    *out_fd = fd;
    return Status::OK();
  };

  bool reuseport = !config_.force_accept_handoff;
  std::vector<int> listen_fds;
  port_ = port;
  int first_fd = -1;
  Status first = open_listen(port, reuseport, &first_fd);
  if (!first.ok() && reuseport) {
    // SO_REUSEPORT refused (exotic kernel): fall back to one acceptor
    // with sharded hand-off rings.
    reuseport = false;
    first = open_listen(port, /*reuseport=*/false, &first_fd);
  }
  if (!first.ok()) return first;
  if (port == 0) port = port_; else port_ = port;
  listen_fds.push_back(first_fd);
  if (reuseport) {
    for (int i = 1; i < loop_count; ++i) {
      int fd = -1;
      if (Status s = open_listen(port_, /*reuseport=*/true, &fd); !s.ok()) {
        // Sharded bind failed mid-way: degrade to the hand-off fallback
        // on the sockets we do have (loop 0 accepts for everyone).
        reuseport = false;
        break;
      }
      listen_fds.push_back(fd);
    }
  }

  stopping_.store(false);
  draining_.store(false);
  CaptureBaselines();

  auto shared = std::make_unique<EventLoopShared>();
  shared->respond = [this](const std::string& head, int fd) {
    return RespondToHead(head, fd);
  };
  shared->now = config_.clock
                    ? config_.clock
                    : [] { return std::chrono::steady_clock::now(); };
  shared->stopping = &stopping_;
  shared->read_timeout_ms = config_.read_timeout_ms;
  shared->write_timeout_ms = config_.write_timeout_ms;
  shared->drain_timeout_ms = config_.drain_timeout_ms;
  shared->max_request_head = config_.max_request_head;
  shared->max_request_body = config_.max_request_body;
  shared->so_sndbuf = config_.so_sndbuf;
  shared->max_connections = std::max<size_t>(1, config_.accept_queue_limit);
  shared->shed = shed_;
  shared->read_timeouts = read_timeouts_c_;
  shared->write_timeouts = write_timeouts_c_;
  shared->oversized_heads = oversized_heads_c_;
  shared->oversized_bodies = oversized_bodies_c_;
  shared->status_408 = status_408_;
  shared->status_413 = status_413_;
  shared->status_431 = status_431_;
  shared->status_503 = status_503_;

  std::vector<std::unique_ptr<EventLoop>> loops;
  for (int i = 0; i < loop_count; ++i) {
    // Per-loop series: each gauge/counter is written only by its
    // owning loop; /healthz and the accessors sum them at read time.
    obs::MetricsRegistry::Labels labels{{"loop", std::to_string(i)}};
    obs::Gauge* depth = registry_->GetGauge(
        "xmlsec_listener_queue_depth",
        "accepted connections waiting for a free worker", labels);
    obs::Counter* accepts = registry_->GetCounter(
        "xmlsec_listener_loop_accepts_total",
        "connections accepted, per event loop", labels);
    depth->Set(0);
    int fd = -1;
    if (reuseport) {
      fd = static_cast<size_t>(i) < listen_fds.size() ? listen_fds[i] : -1;
    } else {
      fd = i == 0 ? listen_fds[0] : -1;
    }
    auto loop = std::make_unique<EventLoop>(i, shared.get(), depth, accepts);
    if (Status s = loop->Init(fd); !s.ok()) {
      // Sockets not yet adopted by a loop must be closed here.
      for (size_t remaining = loops.size() + 1; remaining < listen_fds.size();
           ++remaining) {
        if (reuseport) close(listen_fds[remaining]);
      }
      return s;
    }
    loops.push_back(std::move(loop));
  }
  // In fallback mode the extra REUSEPORT sockets never existed; in
  // REUSEPORT mode every socket was adopted by its loop above.
  if (!reuseport && loop_count > 1) {
    // Loop 0 accepts for everyone and round-robins connections across
    // the SPSC hand-off rings (itself included).  Populated before any
    // loop thread starts, never mutated after.
    for (auto& loop : loops) shared->handoff_targets.push_back(loop.get());
  }

  loop_shared_ = std::move(shared);
  {
    std::lock_guard<std::mutex> lock(loops_mutex_);
    loops_ = std::move(loops);
  }
  for (auto& loop : loops_) loop->StartThread();
  return Status::OK();
}

void TcpHttpListener::StopEventLoops() {
  draining_.store(true);
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(loops_mutex_);
    for (auto& loop : loops_) loop->Wake();
  }
  // Joining outside the lock: each loop drains in-flight connections up
  // to the drain deadline, then force-closes; Wake() callers only touch
  // the eventfds, which stay valid until the clear below.
  for (auto& loop : loops_) loop->Join();
  {
    std::lock_guard<std::mutex> lock(loops_mutex_);
    loops_.clear();
  }
  loop_shared_.reset();
  draining_.store(false);
  stopping_.store(false);
}

void TcpHttpListener::Wake() {
  std::lock_guard<std::mutex> lock(loops_mutex_);
  for (auto& loop : loops_) loop->Wake();
}

size_t TcpHttpListener::queue_depth() const {
  {
    std::lock_guard<std::mutex> lock(loops_mutex_);
    if (!loops_.empty()) {
      size_t total = 0;
      for (const auto& loop : loops_) total += loop->open_connections();
      return total;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

int TcpHttpListener::in_flight() const {
  {
    std::lock_guard<std::mutex> lock(loops_mutex_);
    if (!loops_.empty()) {
      size_t total = 0;
      for (const auto& loop : loops_) total += loop->open_connections();
      return static_cast<int>(total);
    }
  }
  return in_flight_.load();
}

void TcpHttpListener::AcceptLoop() {
  while (!stopping_.load()) {
    int connection = accept(listen_fd_, nullptr, nullptr);
    if (connection < 0) {
      if (stopping_.load() || errno == EBADF || errno == EINVAL) return;
      continue;  // Transient (EINTR, ECONNABORTED).
    }
    if (config_.so_sndbuf > 0) {
      setsockopt(connection, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                 sizeof(config_.so_sndbuf));
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.size() >= config_.accept_queue_limit) {
        shed = true;
      } else {
        queue_.push_back(connection);
        queue_depth_g_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (shed) {
      // Overload: answer 503 + Retry-After instead of queueing without
      // bound (the response is tiny, so this cannot stall the accept
      // loop on a healthy kernel buffer).
      shed_->Inc();
      status_503_->Inc();
      WriteAll(connection,
               BuildHttpResponse(503, "Service Unavailable", "text/plain",
                                 "overloaded; retry shortly\n",
                                 "Retry-After: 1\r\n"));
      GracefulClose(connection, /*max_drain_ms=*/20);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void TcpHttpListener::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;  // Spurious wakeup.
      }
      fd = queue_.front();
      queue_.pop_front();
      queue_depth_g_->Set(static_cast<int64_t>(queue_.size()));
      in_flight_fds_.insert(fd);
      workers_busy_g_->Set(in_flight_.fetch_add(1) + 1);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_fds_.erase(fd);
      workers_busy_g_->Set(in_flight_.fetch_sub(1) - 1);
      if (queue_.empty() && in_flight_fds_.empty()) {
        drained_cv_.notify_all();
      }
    }
    GracefulClose(fd, /*max_drain_ms=*/100);
  }
}

void TcpHttpListener::GracefulClose(int connection_fd, int max_drain_ms) {
  shutdown(connection_fd, SHUT_WR);  // Push the response + FIN out.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(0, max_drain_ms));
  char drain[1024];
  for (;;) {
    int remaining = RemainingMs(max_drain_ms, deadline);
    if (remaining <= 0) break;
    pollfd pfd{connection_fd, POLLIN, 0};
    int ready = poll(&pfd, 1, remaining);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    ssize_t n = recv(connection_fd, drain, sizeof(drain), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // FIN or error: buffer is clean.
  }
  close(connection_fd);
}

bool TcpHttpListener::ReadHead(int connection_fd, std::string* head,
                               int* error_status) {
  *error_status = 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         std::max(0, config_.read_timeout_ms));
  char buffer[4096];
  for (;;) {
    HttpRequestScan scan = ScanHttpRequest(*head);
    if (!scan.head_complete) {
      // Still reading headers: the incremental cap applies to every
      // byte buffered so far.
      if (head->size() > config_.max_request_head) {
        *error_status = 431;
        return false;
      }
    } else {
      if (scan.head_end > config_.max_request_head) {
        *error_status = 431;
        return false;
      }
      // Reject an oversized body from the declared Content-Length alone
      // — before buffering a single body byte past the cap.
      if (scan.content_length > config_.max_request_body) {
        *error_status = 413;
        return false;
      }
      if (scan.complete) return true;
    }
    int remaining = RemainingMs(config_.read_timeout_ms, deadline);
    if (remaining == 0) {
      *error_status = 408;
      return false;
    }
    pollfd pfd{connection_fd, POLLIN, 0};
    int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) {  // Deadline expired mid-head (slowloris).
      *error_status = 408;
      return false;
    }
    ssize_t n = recv(connection_fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;  // Peer reset; nobody left to answer.
    }
    if (n == 0) {
      // Peer half-closed.  Hand whatever arrived to the parser: a
      // truncated head is answered 400, an empty one is ignored.
      return !head->empty();
    }
    head->append(buffer, static_cast<size_t>(n));
  }
}

bool TcpHttpListener::WriteAll(int connection_fd, std::string_view data) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         std::max(0, config_.write_timeout_ms));
  size_t written = 0;
  while (written < data.size()) {
    int remaining = RemainingMs(config_.write_timeout_ms, deadline);
    if (remaining == 0) {  // Slow reader: drop, don't stall the worker.
      write_timeouts_c_->Inc();
      return false;
    }
    pollfd pfd{connection_fd, POLLOUT, 0};
    int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) {
      write_timeouts_c_->Inc();
      return false;
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as
    // EPIPE, not kill the process with SIGPIPE.
    ssize_t n = send(connection_fd, data.data() + written,
                     data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

std::string TcpHttpListener::HealthzResponse() const {
  // Every numeric field below is read from the metrics registry (via the
  // per-Start delta accessors): /healthz and /metrics share one source
  // of truth, healthz keeps its ready/draining liveness semantics.
  const bool is_draining = draining_.load();
  const bool event_mode = config_.event_loops > 0;
  std::string body = "{";
  body += std::string("\"status\":\"") +
          (is_draining ? "draining" : "ready") + "\"";
  // In event-loop mode the loops ARE the workers (requests execute
  // inline on loop threads); report both views so dashboards built for
  // either mode keep working.
  body += ",\"workers\":" +
          std::to_string(event_mode ? std::max(1, config_.event_loops)
                                    : std::max(1, config_.worker_threads));
  body += ",\"event_loops\":" +
          std::to_string(event_mode ? std::max(1, config_.event_loops) : 0);
  body += ",\"queue_depth\":" + std::to_string(queue_depth());
  body += ",\"queue_limit\":" + std::to_string(config_.accept_queue_limit);
  body += ",\"in_flight\":" + std::to_string(in_flight());
  body += ",\"served\":" + std::to_string(requests_served());
  body += ",\"shed\":" + std::to_string(requests_shed());
  body += ",\"read_timeouts\":" + std::to_string(read_timeouts());
  body += ",\"write_timeouts\":" + std::to_string(write_timeouts());
  body += ",\"oversized_heads\":" + std::to_string(oversized_heads());
  // Durable-audit health: `degraded` flips while the WAL sink is
  // failing (the server is then denying 503 or serving memory-audited,
  // per its configured degraded mode).
  body += std::string(",\"degraded\":") +
          (server_->audit_degraded() ? "true" : "false");
  body += ",\"reloads\":" + std::to_string(reloads());
  body += ",\"reload_failures\":" + std::to_string(reload_failures());
  body += "}\n";
  return BuildHttpResponse(is_draining ? 503 : 200,
                           is_draining ? "Service Unavailable" : "OK",
                           "application/json", body);
}

std::string TcpHttpListener::MetricsResponse() const {
  // The exposition is rendered even while draining: observability is
  // most valuable exactly when the server is unhealthy.
  return BuildHttpResponse(200, "OK",
                           "text/plain; version=0.0.4; charset=utf-8",
                           registry_->RenderPrometheus());
}

void TcpHttpListener::ServeConnection(int connection_fd) {
  // Belt-and-braces: the deadlines are enforced with poll(); the socket
  // timeouts below additionally bound any recv/send that slips through
  // (e.g. a race between poll readiness and the peer stalling).
  timeval rcv = MsToTimeval(config_.read_timeout_ms);
  setsockopt(connection_fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
  timeval snd = MsToTimeval(config_.write_timeout_ms);
  setsockopt(connection_fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));

  std::string head;
  int error_status = 0;
  if (!ReadHead(connection_fd, &head, &error_status)) {
    if (error_status == 408) {
      read_timeouts_c_->Inc();
      status_408_->Inc();
      WriteAll(connection_fd,
               BuildHttpResponse(408, "Request Timeout", "text/plain", ""));
    } else if (error_status == 431) {
      oversized_heads_c_->Inc();
      status_431_->Inc();
      WriteAll(connection_fd,
               BuildHttpResponse(431, "Request Header Fields Too Large",
                                 "text/plain", ""));
    } else if (error_status == 413) {
      oversized_bodies_c_->Inc();
      status_413_->Inc();
      WriteAll(connection_fd,
               BuildHttpResponse(413, "Content Too Large", "text/plain", ""));
    }
    return;  // error_status 0: peer gone, nothing to answer.
  }
  std::string response = RespondToHead(head, connection_fd);
  if (!response.empty()) WriteAll(connection_fd, response);
}

std::string TcpHttpListener::RespondToHead(const std::string& head,
                                           int connection_fd) {
  if (head.empty()) return "";

  if (IsHealthzRequest(head)) {
    health_checks_c_->Inc();
    return HealthzResponse();
  }
  if (IsMetricsRequest(head)) {
    metrics_scrapes_c_->Inc();
    return MetricsResponse();
  }
  if (IsReloadRequest(head)) {
    // Admin reload: build-and-swap runs on this worker (or event loop —
    // the swap is allowed to block the loop; DESIGN.md "Threading
    // model"); requests elsewhere keep serving the previous snapshot
    // until the swap publishes, and keep it alive until they finish
    // (RCU).
    if (!config_.reload_handler) {
      return BuildHttpResponse(404, "Not Found", "text/plain",
                               "no reload handler configured\n");
    }
    Status reloaded = config_.reload_handler();
    if (reloaded.ok()) {
      reloads_c_->Inc();
      return BuildHttpResponse(200, "OK", "text/plain", "reloaded\n");
    }
    reload_failures_c_->Inc();
    return BuildHttpResponse(500, "Internal Server Error", "text/plain",
                             reloaded.ToString() + "\n");
  }

  std::string ip = PeerAddress(connection_fd);
  std::string sym = ip == "127.0.0.1" ? sym_for_loopback_ : "";
  std::string response = server_->HandleHttp(head, ip, sym);
  served_->Inc();
  return response;
}

Result<std::string> FetchHttp(uint16_t port, std::string_view request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status out =
        Status::Internal(std::string("connect(): ") + strerror(errno));
    close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

}  // namespace server
}  // namespace xmlsec
