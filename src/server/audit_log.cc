#include "server/audit_log.h"

#include "common/str_util.h"

namespace xmlsec {
namespace server {

std::string AuditEntry::ToString() const {
  std::string out = StrFormat(
      "t=%lld %s@%s(%s) GET %s", static_cast<long long>(time), user.c_str(),
      ip.c_str(), sym.c_str(), uri.c_str());
  if (!query.empty()) out += "?query=" + query;
  out += StrFormat(" -> %d %lld/%lld", http_status,
                   static_cast<long long>(visible_nodes),
                   static_cast<long long>(total_nodes));
  if (cache_hit) out += " [cache]";
  return out;
}

void AuditLog::Record(AuditEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
  ++total_recorded_;
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<AuditEntry> AuditLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<AuditEntry>(entries_.begin(), entries_.end());
}

std::vector<AuditEntry> AuditLog::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AuditEntry> out(entries_.begin(), entries_.end());
  entries_.clear();
  return out;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

int64_t AuditLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

}  // namespace server
}  // namespace xmlsec
