#include "server/audit_log.h"

#include <cstdio>

#include "common/str_util.h"

namespace xmlsec {
namespace server {

std::string AuditEntry::ToString() const {
  std::string out = StrFormat(
      "t=%lld %s@%s(%s) GET %s", static_cast<long long>(time), user.c_str(),
      ip.c_str(), sym.c_str(), uri.c_str());
  if (!query.empty()) out += "?query=" + query;
  out += StrFormat(" -> %d %lld/%lld", http_status,
                   static_cast<long long>(visible_nodes),
                   static_cast<long long>(total_nodes));
  if (cache_hit) out += " [cache]";
  if (!trace.empty()) out += " trace{" + trace + "}";
  return out;
}

AuditLog::~AuditLog() { DetachFileSink(); }

void AuditLog::Record(AuditEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    std::string line = entry.ToString();
    line.push_back('\n');
    if (sink_bytes_ + line.size() > sink_options_.rotate_bytes &&
        sink_bytes_ > 0) {
      RotateLocked();
    }
    if (sink_ == nullptr ||
        std::fwrite(line.data(), 1, line.size(), sink_) != line.size()) {
      ++sink_write_failures_;
    } else {
      sink_bytes_ += line.size();
      // Durability over throughput: an audit trail that lags the crash
      // it should explain is useless.
      std::fflush(sink_);
    }
  }
  entries_.push_back(std::move(entry));
  ++total_recorded_;
  while (entries_.size() > capacity_) entries_.pop_front();
}

Status AuditLog::AttachFileSink(std::string path, FileSinkOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    std::fflush(sink_);
    std::fclose(sink_);
    sink_ = nullptr;
  }
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open audit sink '" + path + "'");
  }
  long position = std::ftell(file);
  sink_ = file;
  sink_path_ = std::move(path);
  sink_options_ = options;
  if (sink_options_.rotate_bytes == 0) sink_options_.rotate_bytes = 1;
  if (sink_options_.max_rotated_files < 0) sink_options_.max_rotated_files = 0;
  sink_bytes_ = position > 0 ? static_cast<size_t>(position) : 0;
  return Status::OK();
}

void AuditLog::DetachFileSink() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ == nullptr) return;
  std::fflush(sink_);
  std::fclose(sink_);
  sink_ = nullptr;
  sink_path_.clear();
  sink_bytes_ = 0;
}

Status AuditLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ == nullptr) return Status::OK();
  if (std::fflush(sink_) != 0) {
    return Status::Internal("audit sink flush failed");
  }
  return Status::OK();
}

int64_t AuditLog::sink_write_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sink_write_failures_;
}

void AuditLog::RotateLocked() {
  std::fflush(sink_);
  std::fclose(sink_);
  sink_ = nullptr;
  // Shift path.N-1 -> path.N, ..., path -> path.1; the oldest falls off.
  int keep = sink_options_.max_rotated_files;
  if (keep > 0) {
    std::string oldest = sink_path_ + "." + std::to_string(keep);
    std::remove(oldest.c_str());
    for (int i = keep - 1; i >= 1; --i) {
      std::string from = sink_path_ + "." + std::to_string(i);
      std::string to = sink_path_ + "." + std::to_string(i + 1);
      std::rename(from.c_str(), to.c_str());  // Missing generations: no-op.
    }
    std::rename(sink_path_.c_str(), (sink_path_ + ".1").c_str());
  } else {
    std::remove(sink_path_.c_str());  // No generations kept: truncate.
  }
  sink_ = std::fopen(sink_path_.c_str(), "a");
  sink_bytes_ = 0;
  if (sink_ == nullptr) ++sink_write_failures_;
}

std::vector<AuditEntry> AuditLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<AuditEntry>(entries_.begin(), entries_.end());
}

std::vector<AuditEntry> AuditLog::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AuditEntry> out(entries_.begin(), entries_.end());
  entries_.clear();
  return out;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

int64_t AuditLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

}  // namespace server
}  // namespace xmlsec
