#include "server/audit_log.h"

#include <cstdio>

#include "common/str_util.h"
#include "server/audit_wal.h"

namespace xmlsec {
namespace server {

std::string AuditEntry::ToString() const {
  std::string out = StrFormat(
      "t=%lld %s@%s(%s) GET %s", static_cast<long long>(time), user.c_str(),
      ip.c_str(), sym.c_str(), uri.c_str());
  if (!query.empty()) out += "?query=" + query;
  out += StrFormat(" -> %d %lld/%lld", http_status,
                   static_cast<long long>(visible_nodes),
                   static_cast<long long>(total_nodes));
  if (cache_hit) out += " [cache]";
  if (!trace.empty()) out += " trace{" + trace + "}";
  return out;
}

AuditLog::~AuditLog() { DetachFileSink(); }

void AuditLog::Remember(AuditEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
  ++total_recorded_;
  while (entries_.size() > capacity_) entries_.pop_front();
}

void AuditLog::WriteSinkLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ == nullptr) return;
  const size_t bytes = line.size() + 1;  // trailing newline
  if (sink_bytes_ + bytes > sink_options_.rotate_bytes && sink_bytes_ > 0) {
    RotateLocked();
  }
  if (sink_ == nullptr ||
      std::fwrite(line.data(), 1, line.size(), sink_) != line.size() ||
      std::fputc('\n', sink_) == EOF) {
    ++sink_write_failures_;
    return;
  }
  sink_bytes_ += bytes;
  // Batched flush: one flush per N records / M bytes instead of one per
  // record — the libc buffer absorbs bursts, `Flush`/`Detach` and
  // rotation drain it deterministically.
  unflushed_bytes_ += bytes;
  if (++unflushed_records_ >= sink_options_.flush_every_records ||
      unflushed_bytes_ >= sink_options_.flush_every_bytes) {
    std::fflush(sink_);
    unflushed_records_ = 0;
    unflushed_bytes_ = 0;
  }
}

void AuditLog::Record(AuditEntry entry) {
  AuditWal* wal = wal_.load(std::memory_order_acquire);
  const bool has_sink = sink_attached_.load(std::memory_order_acquire);
  if (wal != nullptr || has_sink) {
    // Format OUTSIDE every lock: ToString is the expensive part of a
    // record, and serializing it behind a global mutex was the old
    // sink's hot-path bottleneck.
    std::string line = entry.ToString();
    if (wal != nullptr) {
      // Enqueue-mode durability: failures are counted by the WAL; the
      // in-memory trail below still keeps the entry.
      (void)wal->Append(line);
    }
    if (has_sink) WriteSinkLine(line);
  }
  Remember(std::move(entry));
}

Status AuditLog::RecordDurable(AuditEntry entry, AuditDurability durability) {
  AuditWal* wal = wal_.load(std::memory_order_acquire);
  const bool has_sink = sink_attached_.load(std::memory_order_acquire);
  std::string line;
  if (wal != nullptr || has_sink) line = entry.ToString();
  if (wal != nullptr) {
    Result<uint64_t> seq = wal->Append(line);
    if (!seq.ok()) return seq.status();
    if (durability == AuditDurability::kFsync) {
      Status durable = wal->WaitDurable(*seq);
      // The frame was dropped: the entry exists nowhere durable, and
      // the caller must not pretend otherwise.  It decides whether to
      // fail the request closed or degrade to RecordMemoryOnly.
      if (!durable.ok()) return durable;
    }
  }
  if (has_sink) WriteSinkLine(line);
  Remember(std::move(entry));
  return Status::OK();
}

void AuditLog::RecordMemoryOnly(AuditEntry entry) {
  Remember(std::move(entry));
}

Status AuditLog::AttachFileSink(std::string path, FileSinkOptions options) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ != nullptr) {
    std::fflush(sink_);
    std::fclose(sink_);
    sink_ = nullptr;
    sink_attached_.store(false, std::memory_order_release);
  }
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open audit sink '" + path + "'");
  }
  long position = std::ftell(file);
  sink_ = file;
  sink_path_ = std::move(path);
  sink_options_ = options;
  if (sink_options_.rotate_bytes == 0) sink_options_.rotate_bytes = 1;
  if (sink_options_.max_rotated_files < 0) sink_options_.max_rotated_files = 0;
  if (sink_options_.flush_every_records == 0) {
    sink_options_.flush_every_records = 1;
  }
  if (sink_options_.flush_every_bytes == 0) sink_options_.flush_every_bytes = 1;
  sink_bytes_ = position > 0 ? static_cast<size_t>(position) : 0;
  unflushed_records_ = 0;
  unflushed_bytes_ = 0;
  sink_attached_.store(true, std::memory_order_release);
  return Status::OK();
}

void AuditLog::DetachFileSink() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_attached_.store(false, std::memory_order_release);
  if (sink_ == nullptr) return;
  std::fflush(sink_);
  std::fclose(sink_);
  sink_ = nullptr;
  sink_path_.clear();
  sink_bytes_ = 0;
  unflushed_records_ = 0;
  unflushed_bytes_ = 0;
}

void AuditLog::AttachWal(AuditWal* wal) {
  wal_.store(wal, std::memory_order_release);
}

bool AuditLog::degraded() const {
  AuditWal* wal = wal_.load(std::memory_order_acquire);
  return wal != nullptr && !wal->healthy();
}

Status AuditLog::Flush() {
  {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    if (sink_ != nullptr) {
      if (std::fflush(sink_) != 0) {
        return Status::Internal("audit sink flush failed");
      }
      unflushed_records_ = 0;
      unflushed_bytes_ = 0;
    }
  }
  AuditWal* wal = wal_.load(std::memory_order_acquire);
  if (wal != nullptr) return wal->Flush();
  return Status::OK();
}

int64_t AuditLog::sink_write_failures() const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return sink_write_failures_;
}

void AuditLog::RotateLocked() {
  std::fflush(sink_);
  std::fclose(sink_);
  sink_ = nullptr;
  unflushed_records_ = 0;
  unflushed_bytes_ = 0;
  // Shift path.N-1 -> path.N, ..., path -> path.1; the oldest falls off.
  int keep = sink_options_.max_rotated_files;
  if (keep > 0) {
    std::string oldest = sink_path_ + "." + std::to_string(keep);
    std::remove(oldest.c_str());
    for (int i = keep - 1; i >= 1; --i) {
      std::string from = sink_path_ + "." + std::to_string(i);
      std::string to = sink_path_ + "." + std::to_string(i + 1);
      std::rename(from.c_str(), to.c_str());  // Missing generations: no-op.
    }
    std::rename(sink_path_.c_str(), (sink_path_ + ".1").c_str());
  } else {
    std::remove(sink_path_.c_str());  // No generations kept: truncate.
  }
  sink_ = std::fopen(sink_path_.c_str(), "a");
  sink_bytes_ = 0;
  if (sink_ == nullptr) {
    ++sink_write_failures_;
    sink_attached_.store(false, std::memory_order_release);
  }
}

std::vector<AuditEntry> AuditLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<AuditEntry>(entries_.begin(), entries_.end());
}

std::vector<AuditEntry> AuditLog::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AuditEntry> out(entries_.begin(), entries_.end());
  entries_.clear();
  return out;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

int64_t AuditLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

}  // namespace server
}  // namespace xmlsec
