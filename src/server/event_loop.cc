#include "server/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "server/http.h"

namespace xmlsec {
namespace server {

namespace {

/// Milliseconds until `at`, rounded up, clamped to [0, 60'000].
int MsUntil(EventLoop::Clock::time_point now,
            EventLoop::Clock::time_point at) {
  if (at <= now) return 0;
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(at - now).count();
  if (std::chrono::milliseconds(ms) < at - now) ++ms;  // round up
  if (ms > 60'000) return 60'000;
  return static_cast<int>(ms);
}

}  // namespace

EventLoop::EventLoop(int index, const EventLoopShared* shared,
                     obs::Gauge* depth_gauge, obs::Counter* accepts)
    : index_(index),
      shared_(shared),
      depth_gauge_(depth_gauge),
      accepts_(accepts) {}

EventLoop::~EventLoop() {
  // Join() must have run (or StartThread never did); release the fds.
  if (thread_.joinable()) thread_.join();
  CloseListen();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  for (auto& [fd, conn] : conns_) close(fd);
  // Hand-offs that were queued but never adopted.
  size_t head = handoff_head_.load(std::memory_order_acquire);
  size_t tail = handoff_tail_.load(std::memory_order_acquire);
  for (; head != tail; ++head) {
    close(handoff_slots_[head % kHandoffCapacity]);
  }
}

Status EventLoop::Init(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1(): ") +
                            strerror(errno));
  }
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd(): ") + strerror(errno));
  }
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(wake): ") +
                            strerror(errno));
  }
  if (listen_fd_ >= 0) {
    // Non-blocking accept: AcceptReady drains to EAGAIN and returns to
    // epoll_wait — a blocking accept would wedge the whole loop.
    int flags = fcntl(listen_fd_, F_GETFL, 0);
    fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
    epoll_event listen_ev{};
    listen_ev.events = EPOLLIN;
    listen_ev.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_ev) != 0) {
      return Status::Internal(std::string("epoll_ctl(listen): ") +
                              strerror(errno));
    }
  }
  return Status::OK();
}

void EventLoop::StartThread() {
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR: the wakeup is
  // already pending either way.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::OfferHandoff(int fd) {
  size_t tail = handoff_tail_.load(std::memory_order_relaxed);
  size_t head = handoff_head_.load(std::memory_order_acquire);
  if (tail - head >= kHandoffCapacity) return false;  // ring full: shed
  handoff_slots_[tail % kHandoffCapacity] = fd;
  handoff_tail_.store(tail + 1, std::memory_order_release);
  return true;
}

int EventLoop::TimeoutMs(Clock::time_point now) const {
  Clock::time_point next = Clock::time_point::max();
  if (!deadlines_.empty()) next = deadlines_.begin()->first;
  if (drain_armed_ && drain_deadline_ < next) next = drain_deadline_;
  if (next == Clock::time_point::max()) return -1;
  return MsUntil(now, next);
}

void EventLoop::Run() {
  epoll_event events[64];
  for (;;) {
    const bool stopping = shared_->stopping->load(std::memory_order_acquire);
    if (stopping) {
      CloseListen();  // No new connections; in-flight ones may finish.
      if (!drain_armed_) {
        drain_armed_ = true;
        drain_deadline_ = shared_->now() +
                          std::chrono::milliseconds(
                              std::max(0, shared_->drain_timeout_ms));
      }
      if (conns_.empty()) break;
      if (shared_->now() >= drain_deadline_) {
        // Hard drain deadline: yank the transport from under whatever
        // is still open (mirrors the legacy force-close).
        while (!conns_.empty()) CloseConnection(conns_.begin()->first);
        break;
      }
    }
    int timeout = TimeoutMs(shared_->now());
    int n = epoll_wait(epoll_fd_, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable epoll failure: bail out, Stop() joins us.
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeAndHandoffs();
        continue;
      }
      if (fd == listen_fd_ && listen_fd_ >= 0) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          it->second.state != ConnState::kReadHead &&
          it->second.state != ConnState::kDrain) {
        CloseConnection(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 &&
          it->second.state == ConnState::kWrite) {
        OnWritable(fd, it->second);
        // The connection may have been closed or re-registered; refind.
        it = conns_.find(fd);
        if (it == conns_.end()) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 &&
          it->second.state != ConnState::kWrite) {
        OnReadable(fd, it->second);
      }
    }
    ExpireDeadlines(shared_->now());
  }
  CloseListen();
}

void EventLoop::CloseListen() {
  if (listen_fd_ < 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  close(listen_fd_);
  listen_fd_ = -1;
}

void EventLoop::AcceptReady() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN (drained) or the listen socket went away.
    }
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (shared_->so_sndbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &shared_->so_sndbuf,
                 sizeof(shared_->so_sndbuf));
    }
    accepts_->Inc();
    RouteAccepted(fd);
  }
}

void EventLoop::RouteAccepted(int fd) {
  const auto& targets = shared_->handoff_targets;
  if (targets.size() > 1) {
    // Fallback mode: this loop accepts for everyone and round-robins
    // over the SPSC rings; a full ring or a target at its bound keeps
    // the connection here (AdoptOrShed then applies OUR bound).
    EventLoop* target = targets[rr_next_++ % targets.size()];
    if (target != this &&
        target->open_connections() < shared_->max_connections &&
        target->OfferHandoff(fd)) {
      target->Wake();
      return;
    }
  }
  AdoptOrShed(fd);
}

void EventLoop::AdoptOrShed(int fd) {
  if (open_connections_.load(std::memory_order_relaxed) >=
      shared_->max_connections) {
    // Overload: this loop is at its connection bound.  Answer 503 +
    // Retry-After through the normal non-blocking write machinery so
    // the tiny response is actually delivered (an immediate close
    // with unread request bytes would RST it away).
    shared_->shed->Inc();
    shared_->status_503->Inc();
    AdoptConnection(
        fd, /*shed=*/true,
        BuildHttpResponse(503, "Service Unavailable", "text/plain",
                          "overloaded; retry shortly\n",
                          "Retry-After: 1\r\n"));
    return;
  }
  AdoptConnection(fd, /*shed=*/false, "");
}

void EventLoop::AdoptConnection(int fd, bool shed,
                                std::string shed_response) {
  auto [it, inserted] = conns_.emplace(fd, Connection{});
  Connection& conn = it->second;
  conn.deadline_it = deadlines_.end();
  conn.shed = shed;
  if (!shed) {
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    PublishDepth();
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  if (shed) {
    StartResponse(fd, conn, std::move(shed_response));
  } else {
    SetDeadline(fd, conn,
                shared_->now() + std::chrono::milliseconds(
                                     std::max(0, shared_->read_timeout_ms)));
  }
}

void EventLoop::DrainWakeAndHandoffs() {
  uint64_t drained;
  while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
  }
  // Adopt queued hand-offs (fallback mode; the ring is empty when each
  // loop accepts for itself).
  for (;;) {
    size_t head = handoff_head_.load(std::memory_order_relaxed);
    size_t tail = handoff_tail_.load(std::memory_order_acquire);
    if (head == tail) break;
    int fd = handoff_slots_[head % kHandoffCapacity];
    handoff_head_.store(head + 1, std::memory_order_release);
    if (shared_->stopping->load(std::memory_order_acquire)) {
      close(fd);  // Arrived after the drain began: nothing to serve.
      continue;
    }
    AdoptOrShed(fd);  // Already non-blocking (the acceptor set it).
  }
}

void EventLoop::OnReadable(int fd, Connection& conn) {
  char buffer[4096];
  if (conn.state == ConnState::kDrain) {
    for (;;) {
      ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) continue;  // Discard late client bytes.
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      CloseConnection(fd);  // FIN or error: the buffer is clean.
      return;
    }
  }
  // kReadHead: accumulate with the incremental size cap.
  for (;;) {
    ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // Wait on.
      CloseConnection(fd);  // Peer reset; nobody left to answer.
      return;
    }
    if (n == 0) {
      // Peer half-closed.  A truncated head is handed to the parser
      // (answered 400); an empty one is silently dropped.
      if (conn.head.empty()) {
        CloseConnection(fd);
      } else {
        Dispatch(fd, conn);
      }
      return;
    }
    conn.head.append(buffer, static_cast<size_t>(n));
    HttpRequestScan scan = ScanHttpRequest(conn.head);
    if (!scan.head_complete) {
      if (conn.head.size() > shared_->max_request_head) {
        shared_->oversized_heads->Inc();
        shared_->status_431->Inc();
        StartResponse(fd, conn,
                      BuildHttpResponse(431, "Request Header Fields Too Large",
                                        "text/plain", ""));
        return;
      }
      continue;
    }
    if (scan.head_end > shared_->max_request_head) {
      shared_->oversized_heads->Inc();
      shared_->status_431->Inc();
      StartResponse(fd, conn,
                    BuildHttpResponse(431, "Request Header Fields Too Large",
                                      "text/plain", ""));
      return;
    }
    // Reject from the declared Content-Length alone — before buffering
    // body bytes past the cap.
    if (scan.content_length > shared_->max_request_body) {
      shared_->oversized_bodies->Inc();
      shared_->status_413->Inc();
      StartResponse(fd, conn,
                    BuildHttpResponse(413, "Content Too Large",
                                      "text/plain", ""));
      return;
    }
    if (scan.complete) {
      Dispatch(fd, conn);
      return;
    }
  }
}

void EventLoop::Dispatch(int fd, Connection& conn) {
  // The request runs INLINE on this loop thread: requests are CPU-bound
  // (view computation), so per-core loops serving serially is exactly
  // the parallelism model — N loops saturate N cores.  See DESIGN.md
  // "Threading model" for what may block here (reload, fsync-ack).
  std::string response = shared_->respond(conn.head, fd);
  if (response.empty()) {
    CloseConnection(fd);
    return;
  }
  StartResponse(fd, conn, std::move(response));
}

void EventLoop::StartResponse(int fd, Connection& conn,
                              std::string response) {
  conn.state = ConnState::kWrite;
  conn.out = std::move(response);
  conn.out_off = 0;
  SetDeadline(fd, conn,
              shared_->now() + std::chrono::milliseconds(
                                   std::max(0, shared_->write_timeout_ms)));
  TryWrite(fd, conn);
}

void EventLoop::TryWrite(int fd, Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as
    // EPIPE, not kill the process with SIGPIPE.
    ssize_t n = send(fd, conn.out.data() + conn.out_off,
                     conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateInterest(fd, EPOLLOUT);
        return;  // Kernel buffer full: resume on EPOLLOUT.
      }
      CloseConnection(fd);
      return;
    }
    conn.out_off += static_cast<size_t>(n);
  }
  BeginDrain(fd, conn);
}

void EventLoop::OnWritable(int fd, Connection& conn) { TryWrite(fd, conn); }

void EventLoop::BeginDrain(int fd, Connection& conn) {
  // Half-close our side (response + FIN pushed out), then briefly read
  // whatever the client still sends so close() cannot turn into an RST
  // that destroys the response in flight — the event-loop equivalent of
  // the legacy GracefulClose.
  shutdown(fd, SHUT_WR);
  conn.state = ConnState::kDrain;
  conn.out.clear();
  conn.out_off = 0;
  UpdateInterest(fd, EPOLLIN);
  SetDeadline(fd, conn,
              shared_->now() + std::chrono::milliseconds(
                                   std::max(0, shared_->close_drain_ms)));
}

void EventLoop::ExpireDeadlines(Clock::time_point now) {
  while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
    int fd = deadlines_.begin()->second;
    auto it = conns_.find(fd);
    if (it == conns_.end()) {
      deadlines_.erase(deadlines_.begin());
      continue;
    }
    Connection& conn = it->second;
    ClearDeadline(conn);
    switch (conn.state) {
      case ConnState::kReadHead:
        // Deadline expired mid-head (slowloris): 408 and close.
        shared_->read_timeouts->Inc();
        shared_->status_408->Inc();
        StartResponse(fd, conn,
                      BuildHttpResponse(408, "Request Timeout", "text/plain",
                                        ""));
        break;
      case ConnState::kWrite:
        // Slow reader: drop the connection, don't hold the buffer.
        shared_->write_timeouts->Inc();
        CloseConnection(fd);
        break;
      case ConnState::kDrain:
        CloseConnection(fd);
        break;
    }
  }
}

void EventLoop::SetDeadline(int fd, Connection& conn, Clock::time_point at) {
  ClearDeadline(conn);
  conn.deadline_it = deadlines_.emplace(at, fd);
}

void EventLoop::ClearDeadline(Connection& conn) {
  if (conn.deadline_it != deadlines_.end()) {
    deadlines_.erase(conn.deadline_it);
    conn.deadline_it = deadlines_.end();
  }
}

void EventLoop::UpdateInterest(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ClearDeadline(it->second);
  const bool shed = it->second.shed;
  conns_.erase(it);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  if (!shed) {
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    PublishDepth();
  }
}

void EventLoop::PublishDepth() {
  depth_gauge_->Set(
      static_cast<int64_t>(open_connections_.load(std::memory_order_relaxed)));
}

}  // namespace server
}  // namespace xmlsec
