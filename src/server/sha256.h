#ifndef XMLSEC_SERVER_SHA256_H_
#define XMLSEC_SERVER_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace xmlsec {
namespace server {

/// Minimal self-contained SHA-256 (FIPS 180-4), used to store salted
/// password digests in the user directory.  Not constant-time; adequate
/// for the reproduction's authentication substrate, not for production
/// secret handling.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(std::string_view data);

  /// Finalizes and returns the 32-byte digest.  The object must be
  /// `Reset()` before reuse.
  std::array<uint8_t, 32> Digest();

  /// Convenience: hex digest of `data`.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t length_ = 0;  // total bytes
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// Lowercase hex encoding.
std::string ToHex(const uint8_t* data, size_t size);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_SHA256_H_
