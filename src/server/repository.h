#ifndef XMLSEC_SERVER_REPOSITORY_H_
#define XMLSEC_SERVER_REPOSITORY_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "authz/authorization.h"
#include "authz/policy.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace server {

/// The server-side store of protected resources: DTDs, XML documents
/// (parsed and validated at registration time so requests are served from
/// warm DOM trees), and the authorizations — instance level keyed by
/// document URI, schema level keyed by DTD URI.
class Repository {
 public:
  Repository();

  // --- Schemas ---------------------------------------------------------

  /// Registers a DTD under `uri`.  `text` is external-subset syntax.
  Status AddDtd(std::string_view uri, std::string_view text);

  const xml::Dtd* FindDtd(std::string_view uri) const;

  // --- Documents -------------------------------------------------------

  /// Parses, binds to its DTD, validates, and stores a document.
  ///
  /// The DTD is found in this order: explicit `dtd_uri` argument; the
  /// document's `<!DOCTYPE ... SYSTEM "id">` system identifier looked up
  /// among registered DTDs; the document's internal subset.  A document
  /// with no DTD at all is accepted (well-formed-only resources).
  Status AddDocument(std::string_view uri, std::string_view text,
                     std::string_view dtd_uri = "");

  const xml::Document* FindDocument(std::string_view uri) const;

  /// URI of the DTD governing `doc_uri` ("" when none).
  std::string DtdUriOf(std::string_view doc_uri) const;

  /// Sets the access-control policy for one document (paper §5: several
  /// policies may coexist on a server, but exactly one governs each
  /// document).  Documents without an explicit policy use the server
  /// default.
  Status SetDocumentPolicy(std::string_view doc_uri,
                           authz::PolicyOptions policy);

  /// The policy of `doc_uri`: its own when set, `fallback` otherwise.
  authz::PolicyOptions PolicyOf(std::string_view doc_uri,
                                authz::PolicyOptions fallback) const;

  std::vector<std::string> DocumentUris() const;

  // --- Authorizations --------------------------------------------------

  /// Routes an authorization to the instance or schema set by its object
  /// URI.  Fails with NotFound when the URI matches no registered
  /// resource, and with InvalidArgument for weak schema authorizations.
  Status AddAuthorization(const authz::Authorization& auth);

  /// Loads every authorization of an XACL document (see authz/xacl.h).
  Status AddXacl(std::string_view xacl_text);

  /// Removes a document together with its instance authorizations and
  /// policy.  Cached views invalidate via the version bump.
  Status RemoveDocument(std::string_view uri);

  /// Replaces a document's content in place (same DTD binding rules as
  /// `AddDocument`); its authorizations are kept.
  Status ReplaceDocument(std::string_view uri, std::string_view text,
                         std::string_view dtd_uri = "");

  /// Drops every instance authorization on `doc_uri` (policy reset).
  Status ClearInstanceAuths(std::string_view doc_uri);

  std::span<const authz::Authorization> InstanceAuths(
      std::string_view doc_uri) const;
  std::span<const authz::Authorization> SchemaAuths(
      std::string_view dtd_uri) const;

  /// Instance + applicable schema authorizations counts (diagnostics).
  size_t authorization_count() const { return authorization_count_; }

  /// Monotonic counter bumped on every mutation (document, DTD, or
  /// authorization added) — used by `ViewCache` for invalidation.
  /// Versions are unique across every `Repository` in the process, so a
  /// freshly built snapshot swapped in by hot-reload can never collide
  /// with the version a cached view or automaton was stamped with.
  uint64_t version() const { return version_; }

  /// Version of one document: the repository version at the last
  /// mutation that could change this document's views — its content, its
  /// policy, an instance authorization on it, or a schema authorization
  /// on its DTD.  Drawn from the same process-globally-unique counter as
  /// `version()`, so cache entries stamped with it stay valid across a
  /// copy-on-write snapshot swap when *their* document was untouched
  /// (dirty-region invalidation), and can never collide across
  /// repositories.  0 for unknown documents.
  uint64_t DocumentVersion(std::string_view doc_uri) const;

  /// Copy-on-write snapshot for the write path: a new repository that
  /// shares every stored resource with this one except `doc_uri`, whose
  /// content becomes `doc` (already validated by the caller — the update
  /// processor re-validates against the DTD before publishing).
  /// Authorizations, policies, and other documents keep their versions;
  /// only the replaced document's version advances.
  Result<std::unique_ptr<Repository>> WithUpdatedDocument(
      std::string_view doc_uri, std::unique_ptr<xml::Document> doc) const;

  /// True when any stored authorization carries a validity window;
  /// cached views would then be time-dependent and must be bypassed.
  bool has_time_limited_auths() const { return has_time_limited_auths_; }

 private:
  /// Shares documents and DTDs, copies the rest — only
  /// `WithUpdatedDocument` may copy (stored resources are immutable
  /// once registered, which is what makes sharing sound).
  Repository(const Repository&) = default;

  /// Advances `version_` to the next process-globally-unique value.
  void Bump();

  /// Stamps `doc_uri`'s entry with the current version (no-op when the
  /// document is unknown).
  void TouchDocument(std::string_view doc_uri);

  struct DocumentEntry {
    std::shared_ptr<const xml::Document> document;
    std::string dtd_uri;
    std::optional<authz::PolicyOptions> policy;
    uint64_t doc_version = 0;
  };

  std::map<std::string, std::shared_ptr<const xml::Dtd>, std::less<>> dtds_;
  std::map<std::string, std::string, std::less<>> dtd_texts_;
  std::map<std::string, DocumentEntry, std::less<>> documents_;
  std::map<std::string, std::vector<authz::Authorization>, std::less<>>
      instance_auths_;
  std::map<std::string, std::vector<authz::Authorization>, std::less<>>
      schema_auths_;
  size_t authorization_count_ = 0;
  uint64_t version_ = 0;
  bool has_time_limited_auths_ = false;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_REPOSITORY_H_
