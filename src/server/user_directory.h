#ifndef XMLSEC_SERVER_USER_DIRECTORY_H_
#define XMLSEC_SERVER_USER_DIRECTORY_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xmlsec {
namespace server {

/// The server's local identity store (paper §3: identities are
/// established and authenticated by the server).  Passwords are stored as
/// salted SHA-256 digests, Unix-password-file style.
class UserDirectory {
 public:
  UserDirectory() = default;

  /// Registers `user` with `password`.  Fails on duplicates.
  Status CreateUser(std::string_view user, std::string_view password);

  /// Replaces an existing user's password.
  Status SetPassword(std::string_view user, std::string_view password);

  Status RemoveUser(std::string_view user);

  /// OK when the credentials are valid; Unauthenticated otherwise.
  /// The reserved identity "anonymous" authenticates with any password
  /// when `allow_anonymous` is set.
  Status Authenticate(std::string_view user, std::string_view password) const;

  bool HasUser(std::string_view user) const {
    return entries_.count(std::string(user)) > 0;
  }
  size_t size() const { return entries_.size(); }

  void set_allow_anonymous(bool allow) { allow_anonymous_ = allow; }
  bool allow_anonymous() const { return allow_anonymous_; }

  /// Renders the directory in Unix-password-file style (the mechanism
  /// the paper's §1.1 cites from Apache):
  /// one `user:salt:sha256hex` line per entry.
  std::string SavePasswordFile() const;

  /// Loads entries from `SavePasswordFile` output (or a hand-written
  /// file).  Lines may be blank or `#` comments.  Existing entries with
  /// the same name are replaced.
  Status LoadPasswordFile(std::string_view text);

 private:
  struct Entry {
    std::string salt;
    std::string digest;  // hex SHA-256 of salt + password
  };

  static std::string ComputeDigest(std::string_view salt,
                                   std::string_view password);
  std::string NextSalt();

  std::map<std::string, Entry> entries_;
  uint64_t salt_counter_ = 0;
  bool allow_anonymous_ = true;
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_USER_DIRECTORY_H_
