#include "server/repository.h"

#include <atomic>
#include <limits>

#include "authz/xacl.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace server {

namespace {
/// Process-wide version source: hot-reload builds a second Repository
/// and swaps it in; drawing versions from one counter guarantees the
/// new snapshot's version differs from anything caches have seen.
std::atomic<uint64_t> g_repository_version{0};
}  // namespace

Repository::Repository()
    : version_(g_repository_version.fetch_add(1, std::memory_order_relaxed) +
               1) {}

void Repository::Bump() {
  version_ =
      g_repository_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

Status Repository::AddDtd(std::string_view uri, std::string_view text) {
  if (dtds_.find(uri) != dtds_.end()) {
    return Status::AlreadyExists("DTD '" + std::string(uri) +
                                 "' already registered");
  }
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Dtd> dtd, xml::ParseDtd(text));
  dtds_.emplace(std::string(uri),
                std::shared_ptr<const xml::Dtd>(std::move(dtd)));
  dtd_texts_.emplace(std::string(uri), std::string(text));
  Bump();
  // Documents already bound to this URI (re-registration orders) get new
  // schema context; their cached views must go stale.
  for (auto& [doc_uri, entry] : documents_) {
    if (entry.dtd_uri == uri) entry.doc_version = version_;
  }
  return Status::OK();
}

const xml::Dtd* Repository::FindDtd(std::string_view uri) const {
  auto it = dtds_.find(uri);
  return it == dtds_.end() ? nullptr : it->second.get();
}

Status Repository::AddDocument(std::string_view uri, std::string_view text,
                               std::string_view dtd_uri) {
  if (documents_.find(uri) != documents_.end()) {
    return Status::AlreadyExists("document '" + std::string(uri) +
                                 "' already registered");
  }
  xml::ParseOptions options;
  options.resolver = [this](std::string_view system_id) -> Result<std::string> {
    auto it = dtd_texts_.find(std::string(system_id));
    if (it == dtd_texts_.end()) {
      return Status::NotFound("external DTD '" + std::string(system_id) +
                              "' is not registered");
    }
    return it->second;
  };
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                          xml::ParseDocument(text, options));

  DocumentEntry entry;
  if (!dtd_uri.empty()) {
    const xml::Dtd* dtd = FindDtd(dtd_uri);
    if (dtd == nullptr) {
      return Status::NotFound("DTD '" + std::string(dtd_uri) +
                              "' is not registered");
    }
    auto copy = std::make_unique<xml::Dtd>(*dtd);
    if (copy->name().empty() && doc->root() != nullptr) {
      copy->set_name(doc->root()->tag());
    }
    doc->set_dtd(std::move(copy));
    entry.dtd_uri = std::string(dtd_uri);
  } else if (!doc->doctype_system_id().empty() &&
             dtds_.find(doc->doctype_system_id()) != dtds_.end()) {
    entry.dtd_uri = doc->doctype_system_id();
  }

  if (doc->dtd() != nullptr && !doc->dtd()->empty()) {
    XMLSEC_RETURN_IF_ERROR(xml::ValidateDocument(doc.get()));
    doc->Reindex();  // Defaulted attributes got added.
  }
  entry.document = std::shared_ptr<const xml::Document>(std::move(doc));
  Bump();
  entry.doc_version = version_;
  documents_.emplace(std::string(uri), std::move(entry));
  return Status::OK();
}

const xml::Document* Repository::FindDocument(std::string_view uri) const {
  auto it = documents_.find(uri);
  return it == documents_.end() ? nullptr : it->second.document.get();
}

std::string Repository::DtdUriOf(std::string_view doc_uri) const {
  auto it = documents_.find(doc_uri);
  return it == documents_.end() ? std::string() : it->second.dtd_uri;
}

Status Repository::SetDocumentPolicy(std::string_view doc_uri,
                                     authz::PolicyOptions policy) {
  auto it = documents_.find(doc_uri);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + std::string(doc_uri) +
                            "' is not registered");
  }
  it->second.policy = policy;
  Bump();
  it->second.doc_version = version_;
  return Status::OK();
}

authz::PolicyOptions Repository::PolicyOf(
    std::string_view doc_uri, authz::PolicyOptions fallback) const {
  auto it = documents_.find(doc_uri);
  if (it == documents_.end() || !it->second.policy.has_value()) {
    return fallback;
  }
  return *it->second.policy;
}

std::vector<std::string> Repository::DocumentUris() const {
  std::vector<std::string> out;
  out.reserve(documents_.size());
  for (const auto& [uri, entry] : documents_) out.push_back(uri);
  return out;
}

Status Repository::AddAuthorization(const authz::Authorization& auth) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  const bool time_limited =
      auth.valid_from != kMin || auth.valid_until != kMax;
  const std::string& uri = auth.object.uri;
  if (dtds_.find(uri) != dtds_.end()) {
    if (authz::IsWeak(auth.type)) {
      return Status::InvalidArgument(
          "authorization " + auth.ToString() +
          " targets DTD '" + uri +
          "' but is weak; weakness applies only at instance level");
    }
    schema_auths_[uri].push_back(auth);
    ++authorization_count_;
    Bump();
    has_time_limited_auths_ |= time_limited;
    // A schema authorization reaches every document governed by the DTD.
    for (auto& [doc_uri, entry] : documents_) {
      if (entry.dtd_uri == uri) entry.doc_version = version_;
    }
    return Status::OK();
  }
  if (documents_.find(uri) != documents_.end()) {
    instance_auths_[uri].push_back(auth);
    ++authorization_count_;
    Bump();
    TouchDocument(uri);
    has_time_limited_auths_ |= time_limited;
    return Status::OK();
  }
  return Status::NotFound("authorization object URI '" + uri +
                          "' matches no registered document or DTD");
}

Status Repository::AddXacl(std::string_view xacl_text) {
  XMLSEC_ASSIGN_OR_RETURN(authz::XaclFile xacl, authz::ParseXacl(xacl_text));
  for (const authz::Authorization& auth : xacl.authorizations) {
    XMLSEC_RETURN_IF_ERROR(AddAuthorization(auth));
  }
  return Status::OK();
}

Status Repository::RemoveDocument(std::string_view uri) {
  auto it = documents_.find(uri);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + std::string(uri) +
                            "' is not registered");
  }
  documents_.erase(it);
  auto auth_it = instance_auths_.find(uri);
  if (auth_it != instance_auths_.end()) {
    authorization_count_ -= auth_it->second.size();
    instance_auths_.erase(auth_it);
  }
  Bump();
  return Status::OK();
}

Status Repository::ReplaceDocument(std::string_view uri,
                                   std::string_view text,
                                   std::string_view dtd_uri) {
  auto it = documents_.find(uri);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + std::string(uri) +
                            "' is not registered");
  }
  // Stage through AddDocument semantics without disturbing the existing
  // entry on failure: parse into a scratch repository entry first.
  std::optional<authz::PolicyOptions> saved_policy = it->second.policy;
  std::string effective_dtd_uri =
      dtd_uri.empty() ? it->second.dtd_uri : std::string(dtd_uri);
  DocumentEntry old_entry = std::move(it->second);
  documents_.erase(it);
  Status added = AddDocument(uri, text, effective_dtd_uri);
  if (!added.ok()) {
    documents_.emplace(std::string(uri), std::move(old_entry));
    return added;
  }
  documents_.find(uri)->second.policy = saved_policy;
  Bump();
  TouchDocument(uri);
  return Status::OK();
}

Status Repository::ClearInstanceAuths(std::string_view doc_uri) {
  auto it = instance_auths_.find(doc_uri);
  if (it == instance_auths_.end()) return Status::OK();
  authorization_count_ -= it->second.size();
  instance_auths_.erase(it);
  Bump();
  TouchDocument(doc_uri);
  return Status::OK();
}

void Repository::TouchDocument(std::string_view doc_uri) {
  auto it = documents_.find(doc_uri);
  if (it != documents_.end()) it->second.doc_version = version_;
}

uint64_t Repository::DocumentVersion(std::string_view doc_uri) const {
  auto it = documents_.find(doc_uri);
  return it == documents_.end() ? 0 : it->second.doc_version;
}

Result<std::unique_ptr<Repository>> Repository::WithUpdatedDocument(
    std::string_view doc_uri, std::unique_ptr<xml::Document> doc) const {
  auto it = documents_.find(doc_uri);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + std::string(doc_uri) +
                            "' is not registered");
  }
  if (doc == nullptr || doc->root() == nullptr) {
    return Status::InvalidArgument("updated document has no root element");
  }
  // Copy shares every shared_ptr'd resource; only the metadata maps are
  // duplicated.  The new snapshot gets its own process-globally-unique
  // version, and ONLY the replaced document's entry is restamped —
  // cached views of every other document stay valid across the swap.
  auto next = std::unique_ptr<Repository>(new Repository(*this));
  next->Bump();
  DocumentEntry& entry = next->documents_.find(doc_uri)->second;
  entry.document = std::shared_ptr<const xml::Document>(std::move(doc));
  entry.doc_version = next->version_;
  return next;
}

std::span<const authz::Authorization> Repository::InstanceAuths(
    std::string_view doc_uri) const {
  auto it = instance_auths_.find(doc_uri);
  if (it == instance_auths_.end()) return {};
  return it->second;
}

std::span<const authz::Authorization> Repository::SchemaAuths(
    std::string_view dtd_uri) const {
  auto it = schema_auths_.find(dtd_uri);
  if (it == schema_auths_.end()) return {};
  return it->second;
}

}  // namespace server
}  // namespace xmlsec
