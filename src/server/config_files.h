#ifndef XMLSEC_SERVER_CONFIG_FILES_H_
#define XMLSEC_SERVER_CONFIG_FILES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "authz/subject.h"

namespace xmlsec {
namespace server {

/// Loads Apache-AuthGroupFile-style group definitions into a
/// `GroupStore` (the deployment style the paper's §1.1 discusses):
///
/// ```
/// # comments and blank lines allowed
/// Staff: alice bob
/// Admins: alice
/// Employees: Staff Admins     # groups may nest
/// ```
///
/// Members may themselves be group names (nested groups, §3); cycles are
/// rejected with the offending line in the message.
Status LoadGroupsFile(std::string_view text, authz::GroupStore* groups);

/// Inverse of `LoadGroupsFile`: one `group: members...` line per group,
/// sorted, reloadable.
std::string SaveGroupsFile(const authz::GroupStore& groups);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_CONFIG_FILES_H_
