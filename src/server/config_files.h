#ifndef XMLSEC_SERVER_CONFIG_FILES_H_
#define XMLSEC_SERVER_CONFIG_FILES_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "authz/subject.h"

namespace xmlsec {
namespace server {

class Repository;

/// Loads Apache-AuthGroupFile-style group definitions into a
/// `GroupStore` (the deployment style the paper's §1.1 discusses):
///
/// ```
/// # comments and blank lines allowed
/// Staff: alice bob
/// Admins: alice
/// Employees: Staff Admins     # groups may nest
/// ```
///
/// Members may themselves be group names (nested groups, §3); cycles are
/// rejected with the offending line in the message.
Status LoadGroupsFile(std::string_view text, authz::GroupStore* groups);

/// Inverse of `LoadGroupsFile`: one `group: members...` line per group,
/// sorted, reloadable.
std::string SaveGroupsFile(const authz::GroupStore& groups);

/// Builds a complete `Repository` from a manifest file — the unit of
/// atomic policy hot-reload.  Line format (paths relative to the
/// manifest's directory; `#` comments and blank lines allowed):
///
/// ```
/// dtd  <uri> <file>           # register a DTD
/// doc  <uri> <file> [dtd-uri] # register a document (optional DTD)
/// xacl <file>                 # load an XACL authorization sheet
/// ```
///
/// The build is gated: after every resource loads (parse + validate at
/// registration), the combined policy of each document runs through
/// `authz::LintPolicy` and — when the document has a DTD —
/// `analysis::AnalyzePolicy`; any error-severity finding fails the
/// load.  Nothing is published on failure: the caller's live
/// repository is untouched (rollback is the absence of a swap).
///
/// Fault-injection site: `server.reload` fails the build before any
/// file is read.
Result<std::shared_ptr<const Repository>> LoadRepositoryManifest(
    const std::string& manifest_path, const authz::GroupStore& groups);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_CONFIG_FILES_H_
