#include "server/user_directory.h"

#include "common/str_util.h"
#include "server/sha256.h"

namespace xmlsec {
namespace server {

std::string UserDirectory::ComputeDigest(std::string_view salt,
                                         std::string_view password) {
  Sha256 hasher;
  hasher.Update(salt);
  hasher.Update("$");
  hasher.Update(password);
  auto digest = hasher.Digest();
  return ToHex(digest.data(), digest.size());
}

std::string UserDirectory::NextSalt() {
  // Deterministic per-directory salt stream: unique per user, which is
  // what the salt is for (rainbow-table separation between entries).
  return "s" + std::to_string(++salt_counter_);
}

Status UserDirectory::CreateUser(std::string_view user,
                                 std::string_view password) {
  if (user.empty()) {
    return Status::InvalidArgument("user name must not be empty");
  }
  if (user == "anonymous") {
    return Status::InvalidArgument(
        "'anonymous' is reserved for unauthenticated access");
  }
  if (entries_.count(std::string(user)) > 0) {
    return Status::AlreadyExists("user '" + std::string(user) +
                                 "' already exists");
  }
  Entry entry;
  entry.salt = NextSalt();
  entry.digest = ComputeDigest(entry.salt, password);
  entries_.emplace(std::string(user), std::move(entry));
  return Status::OK();
}

Status UserDirectory::SetPassword(std::string_view user,
                                  std::string_view password) {
  auto it = entries_.find(std::string(user));
  if (it == entries_.end()) {
    return Status::NotFound("user '" + std::string(user) + "' not found");
  }
  it->second.salt = NextSalt();
  it->second.digest = ComputeDigest(it->second.salt, password);
  return Status::OK();
}

Status UserDirectory::RemoveUser(std::string_view user) {
  if (entries_.erase(std::string(user)) == 0) {
    return Status::NotFound("user '" + std::string(user) + "' not found");
  }
  return Status::OK();
}

Status UserDirectory::Authenticate(std::string_view user,
                                   std::string_view password) const {
  if (user == "anonymous" || user.empty()) {
    if (allow_anonymous_) return Status::OK();
    return Status::Unauthenticated("anonymous access is disabled");
  }
  auto it = entries_.find(std::string(user));
  if (it == entries_.end()) {
    return Status::Unauthenticated("unknown user '" + std::string(user) +
                                   "'");
  }
  if (ComputeDigest(it->second.salt, password) != it->second.digest) {
    return Status::Unauthenticated("wrong password for user '" +
                                   std::string(user) + "'");
  }
  return Status::OK();
}

std::string UserDirectory::SavePasswordFile() const {
  std::string out;
  for (const auto& [user, entry] : entries_) {
    out += user + ":" + entry.salt + ":" + entry.digest + "\n";
  }
  return out;
}

Status UserDirectory::LoadPasswordFile(std::string_view text) {
  for (const std::string& raw_line : SplitString(text, '\n')) {
    std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields = SplitString(line, ':');
    if (fields.size() != 3 || fields[0].empty() || fields[1].empty() ||
        fields[2].size() != 64) {
      return Status::ParseError("malformed password-file line: '" +
                                std::string(line) + "'");
    }
    if (fields[0] == "anonymous") {
      return Status::InvalidArgument(
          "'anonymous' cannot appear in a password file");
    }
    entries_[fields[0]] = Entry{fields[1], fields[2]};
  }
  return Status::OK();
}

}  // namespace server
}  // namespace xmlsec
