#ifndef XMLSEC_SERVER_EVENT_LOOP_H_
#define XMLSEC_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace xmlsec {
namespace server {

class EventLoop;

/// Immutable context shared by every event loop of one listener.  Built
/// once in `TcpHttpListener::Start` and never mutated while loops run,
/// so loops read it without synchronization; the only cross-thread
/// fields are the `stopping` flag (atomic) and the sharded obs
/// counters.
struct EventLoopShared {
  using Clock = std::chrono::steady_clock;

  /// Produces the full response bytes for a complete request head
  /// (document path, /healthz, /metrics, /admin/reload — the reload
  /// handler runs inline on the calling loop).  An empty return means
  /// "nothing to answer" (empty head).
  std::function<std::string(const std::string& head, int connection_fd)>
      respond;
  /// Time source for every deadline.  Production: steady_clock::now.
  /// Tests inject a manual clock and kick `EventLoop::Wake` after
  /// advancing it, so deadline behavior (408 slowloris, slow-reader
  /// close, drain cutoff) is asserted without wall-clock sleeps.
  std::function<Clock::time_point()> now;
  std::atomic<bool>* stopping = nullptr;

  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  int drain_timeout_ms = 2000;      ///< Stop(): in-flight grace period.
  int close_drain_ms = 100;         ///< post-response half-close drain
  size_t max_request_head = 64 * 1024;
  size_t max_request_body = 1024 * 1024;
  int so_sndbuf = 0;  ///< SO_SNDBUF for accepted sockets; 0 = default
  /// Per-loop open-connection bound; a loop at its bound sheds new
  /// arrivals with `503 Retry-After` (the event-loop analogue of the
  /// legacy bounded accept queue).
  size_t max_connections = 64;

  /// Hand-off fallback (SO_REUSEPORT unavailable): the loops, in index
  /// order, that the accepting loop round-robins connections across
  /// (itself included).  Populated by the listener after construction,
  /// BEFORE any loop thread starts; empty in REUSEPORT mode (each loop
  /// accepts for itself).
  std::vector<EventLoop*> handoff_targets;

  // Shared, sharded counters (same registry families as the legacy
  // worker pool — one dashboard covers both modes).
  obs::Counter* shed = nullptr;
  obs::Counter* read_timeouts = nullptr;
  obs::Counter* write_timeouts = nullptr;
  obs::Counter* oversized_heads = nullptr;
  obs::Counter* oversized_bodies = nullptr;
  obs::Counter* status_408 = nullptr;
  obs::Counter* status_413 = nullptr;
  obs::Counter* status_431 = nullptr;
  obs::Counter* status_503 = nullptr;
};

/// One per-core event loop: a LEVEL-TRIGGERED epoll instance owning its
/// own SO_REUSEPORT accept socket (or, in the hand-off fallback, a
/// lock-free SPSC ring fed by loop 0), a private connection table with
/// non-blocking state-machine reads/writes, and a sorted-deadline map
/// enforcing the read/write/drain deadlines.
///
/// Level-triggered was chosen over edge-triggered deliberately: the
/// loop already drains each socket to EAGAIN on every readiness event,
/// so ET would only save redundant wakeups, while LT removes a whole
/// class of lost-wakeup bugs (a short read that leaves bytes buffered
/// is simply reported again).  See DESIGN.md "Threading model".
///
/// Everything mutable (connection table, deadline map, epoll interest
/// set) is owned by exactly one loop thread; the only writers from
/// other threads are `Wake` (an eventfd write) and `OfferHandoff` (the
/// SPSC ring), both lock-free.
class EventLoop {
 public:
  using Clock = EventLoopShared::Clock;

  /// `depth_gauge` and `accepts` are this loop's OWN per-loop series
  /// (`{loop="<index>"}`): only this loop writes them, so the
  /// accounting is exact under sharding — the scrape sums the series.
  EventLoop(int index, const EventLoopShared* shared,
            obs::Gauge* depth_gauge, obs::Counter* accepts);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and wake eventfd and adopts
  /// `listen_fd` (this loop's SO_REUSEPORT socket; -1 for a hand-off
  /// consumer, which only receives connections via `OfferHandoff`).
  /// The loop owns and closes `listen_fd`.
  Status Init(int listen_fd);

  /// Starts the loop thread.  `Init` must have succeeded.
  void StartThread();

  /// Joins the loop thread (after `stopping` was set and `Wake`
  /// called).  The loop drains in-flight connections up to
  /// `drain_timeout_ms`, then force-closes the rest.
  void Join();

  /// Nudges the loop out of epoll_wait: stop requests, hand-offs, and
  /// manual-clock tests (advance the clock, then Wake so deadlines are
  /// re-evaluated "now").  Callable from any thread.
  void Wake();

  /// Hands an accepted connection to this loop (fallback mode: loop 0
  /// accepts for everyone).  Single producer (the accepting loop),
  /// single consumer (this loop).  False when the ring is full — the
  /// caller sheds.  Call `Wake` after a successful batch.
  bool OfferHandoff(int fd);

  /// Open non-shed connections owned by this loop (exact: incremented
  /// by the adopter, decremented on close).  Readable from any thread.
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

  int index() const { return index_; }

 private:
  enum class ConnState {
    kReadHead,  ///< accumulating the request head (read deadline)
    kWrite,     ///< flushing the response (write deadline)
    kDrain,     ///< half-closed, discarding client bytes until FIN
  };

  struct Connection {
    ConnState state = ConnState::kReadHead;
    bool shed = false;  ///< over-limit courtesy 503; not counted open
    std::string head;
    std::string out;
    size_t out_off = 0;
    /// Position in `deadlines_`; `deadlines_.end()` when unarmed.
    std::multimap<Clock::time_point, int>::iterator deadline_it;
  };

  void Run();
  int TimeoutMs(Clock::time_point now) const;
  void AcceptReady();
  /// Fallback routing: round-robins the accepted fd across
  /// `handoff_targets` (adopting locally when it is this loop's turn or
  /// the target ring is full); REUSEPORT mode adopts directly.
  void RouteAccepted(int fd);
  /// Adopts, shedding with 503 when this loop is at its bound.
  void AdoptOrShed(int fd);
  void AdoptConnection(int fd, bool shed, std::string shed_response);
  void DrainWakeAndHandoffs();
  void OnReadable(int fd, Connection& conn);
  void OnWritable(int fd, Connection& conn);
  /// Parses/dispatches the completed head and starts the response.
  void Dispatch(int fd, Connection& conn);
  void StartResponse(int fd, Connection& conn, std::string response);
  /// Flushes what the socket accepts without blocking; transitions to
  /// kDrain on completion, arms EPOLLOUT on EAGAIN, closes on error.
  void TryWrite(int fd, Connection& conn);
  void BeginDrain(int fd, Connection& conn);
  void ExpireDeadlines(Clock::time_point now);
  void SetDeadline(int fd, Connection& conn, Clock::time_point at);
  void ClearDeadline(Connection& conn);
  void UpdateInterest(int fd, uint32_t events);
  void CloseConnection(int fd);
  void CloseListen();
  void PublishDepth();

  const int index_;
  const EventLoopShared* shared_;
  obs::Gauge* depth_gauge_;
  obs::Counter* accepts_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  std::unordered_map<int, Connection> conns_;
  std::multimap<Clock::time_point, int> deadlines_;
  std::atomic<size_t> open_connections_{0};

  bool drain_armed_ = false;
  Clock::time_point drain_deadline_{};
  size_t rr_next_ = 0;  ///< fallback round-robin cursor (accepting loop)

  /// Lock-free SPSC hand-off ring (fallback when SO_REUSEPORT is
  /// unavailable): slots hold connection fds; head_ is consumer-owned,
  /// tail_ producer-owned.  Power-of-two capacity.
  static constexpr size_t kHandoffCapacity = 128;
  std::vector<int> handoff_slots_{std::vector<int>(kHandoffCapacity, -1)};
  std::atomic<size_t> handoff_head_{0};
  std::atomic<size_t> handoff_tail_{0};
};

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_EVENT_LOOP_H_
