#include "server/config_files.h"

#include <map>
#include <set>

#include "common/str_util.h"

namespace xmlsec {
namespace server {

Status LoadGroupsFile(std::string_view text, authz::GroupStore* groups) {
  for (const std::string& raw_line : SplitString(text, '\n')) {
    // Strip trailing comments, then whitespace.
    std::string line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::string_view trimmed = StripAsciiWhitespace(line);
    if (trimmed.empty()) continue;

    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("groups file: missing ':' in line '" +
                                std::string(trimmed) + "'");
    }
    std::string group(StripAsciiWhitespace(trimmed.substr(0, colon)));
    if (group.empty()) {
      return Status::ParseError("groups file: empty group name in line '" +
                                std::string(trimmed) + "'");
    }
    groups->AddGroup(group);
    std::string_view members = trimmed.substr(colon + 1);
    std::string current;
    auto flush = [&]() -> Status {
      if (current.empty()) return Status::OK();
      Status s = groups->AddMembership(current, group);
      current.clear();
      if (!s.ok()) {
        return Status::ParseError("groups file: " + s.message());
      }
      return Status::OK();
    };
    for (char c : members) {
      if (c == ' ' || c == '\t' || c == ',') {
        XMLSEC_RETURN_IF_ERROR(flush());
      } else {
        current.push_back(c);
      }
    }
    XMLSEC_RETURN_IF_ERROR(flush());
  }
  return Status::OK();
}

std::string SaveGroupsFile(const authz::GroupStore& groups) {
  // Invert member -> parents into group -> members.
  std::map<std::string, std::set<std::string>> by_group;
  for (const auto& [member, parents] : groups.memberships()) {
    for (const std::string& group : parents) {
      by_group[group].insert(member);
    }
  }
  std::string out;
  for (const auto& [group, members] : by_group) {
    out += group + ":";
    for (const std::string& member : members) {
      out += " " + member;
    }
    out += "\n";
  }
  return out;
}

}  // namespace server
}  // namespace xmlsec
