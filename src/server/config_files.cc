#include "server/config_files.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "analysis/analyzer.h"
#include "authz/lint.h"
#include "server/repository.h"

namespace xmlsec {
namespace server {

Status LoadGroupsFile(std::string_view text, authz::GroupStore* groups) {
  for (const std::string& raw_line : SplitString(text, '\n')) {
    // Strip trailing comments, then whitespace.
    std::string line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::string_view trimmed = StripAsciiWhitespace(line);
    if (trimmed.empty()) continue;

    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("groups file: missing ':' in line '" +
                                std::string(trimmed) + "'");
    }
    std::string group(StripAsciiWhitespace(trimmed.substr(0, colon)));
    if (group.empty()) {
      return Status::ParseError("groups file: empty group name in line '" +
                                std::string(trimmed) + "'");
    }
    groups->AddGroup(group);
    std::string_view members = trimmed.substr(colon + 1);
    std::string current;
    auto flush = [&]() -> Status {
      if (current.empty()) return Status::OK();
      Status s = groups->AddMembership(current, group);
      current.clear();
      if (!s.ok()) {
        return Status::ParseError("groups file: " + s.message());
      }
      return Status::OK();
    };
    for (char c : members) {
      if (c == ' ' || c == '\t' || c == ',') {
        XMLSEC_RETURN_IF_ERROR(flush());
      } else {
        current.push_back(c);
      }
    }
    XMLSEC_RETURN_IF_ERROR(flush());
  }
  return Status::OK();
}

std::string SaveGroupsFile(const authz::GroupStore& groups) {
  // Invert member -> parents into group -> members.
  std::map<std::string, std::set<std::string>> by_group;
  for (const auto& [member, parents] : groups.memberships()) {
    for (const std::string& group : parents) {
      by_group[group].insert(member);
    }
  }
  std::string out;
  for (const auto& [group, members] : by_group) {
    out += group + ":";
    for (const std::string& member : members) {
      out += " " + member;
    }
    out += "\n";
  }
  return out;
}

namespace {

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read file '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Resolves a manifest-relative path against the manifest's directory.
std::string ResolveRelative(const std::string& base_dir,
                            const std::string& path) {
  if (path.empty() || path.front() == '/' || base_dir.empty()) return path;
  return base_dir + "/" + path;
}

std::vector<std::string> SplitFields(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Result<std::shared_ptr<const Repository>> LoadRepositoryManifest(
    const std::string& manifest_path, const authz::GroupStore& groups) {
  // Fault-injection site: a reload failure at ANY point must leave the
  // serving repository untouched; failing before the first file read is
  // the earliest (and in tests, the deterministic) abort.
  XMLSEC_RETURN_IF_ERROR(failpoint::Check("server.reload"));
  XMLSEC_ASSIGN_OR_RETURN(std::string manifest, ReadFileText(manifest_path));
  std::string base_dir;
  if (size_t slash = manifest_path.rfind('/'); slash != std::string::npos) {
    base_dir = manifest_path.substr(0, slash);
  }

  // Build the candidate ENTIRELY off to the side: no request can
  // observe it until the caller swaps it in, so a failure anywhere
  // below is a rollback by construction.
  auto repo = std::make_shared<Repository>();
  int line_number = 0;
  for (const std::string& raw_line : SplitString(manifest, '\n')) {
    ++line_number;
    std::string line = raw_line;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::vector<std::string> fields =
        SplitFields(StripAsciiWhitespace(line));
    if (fields.empty()) continue;
    auto fail = [&](const std::string& what) {
      return Status::ParseError("manifest line " +
                                std::to_string(line_number) + ": " + what);
    };
    if (fields[0] == "dtd") {
      if (fields.size() != 3) return fail("expected 'dtd <uri> <file>'");
      XMLSEC_ASSIGN_OR_RETURN(
          std::string text, ReadFileText(ResolveRelative(base_dir, fields[2])));
      XMLSEC_RETURN_IF_ERROR(repo->AddDtd(fields[1], text));
    } else if (fields[0] == "doc") {
      if (fields.size() != 3 && fields.size() != 4) {
        return fail("expected 'doc <uri> <file> [dtd-uri]'");
      }
      XMLSEC_ASSIGN_OR_RETURN(
          std::string text, ReadFileText(ResolveRelative(base_dir, fields[2])));
      XMLSEC_RETURN_IF_ERROR(repo->AddDocument(
          fields[1], text, fields.size() == 4 ? fields[3] : ""));
    } else if (fields[0] == "xacl") {
      if (fields.size() != 2) return fail("expected 'xacl <file>'");
      XMLSEC_ASSIGN_OR_RETURN(
          std::string text, ReadFileText(ResolveRelative(base_dir, fields[1])));
      XMLSEC_RETURN_IF_ERROR(repo->AddXacl(text));
    } else {
      return fail("unknown directive '" + fields[0] + "'");
    }
  }

  // The gate: a repository that loads but carries an error-grade policy
  // defect (uncompilable path, weak schema authorization, empty
  // validity window, ...) must not go live.  Warnings pass — they are
  // an author's concern, not a serving hazard.
  for (const std::string& uri : repo->DocumentUris()) {
    const xml::Document* doc = repo->FindDocument(uri);
    std::span<const authz::Authorization> instance = repo->InstanceAuths(uri);
    std::span<const authz::Authorization> schema;
    const xml::Dtd* dtd = nullptr;
    std::string dtd_uri = repo->DtdUriOf(uri);
    if (!dtd_uri.empty()) {
      schema = repo->SchemaAuths(dtd_uri);
      dtd = repo->FindDtd(dtd_uri);
    }
    std::vector<authz::LintFinding> findings =
        authz::LintPolicy(instance, schema, groups, doc, dtd);
    if (dtd != nullptr) {
      analysis::AnalyzerOptions options;
      options.coverage = false;
      analysis::PolicyAnalysis analysis =
          analysis::AnalyzePolicy(instance, schema, groups, *dtd, options);
      findings.insert(findings.end(), analysis.findings.begin(),
                      analysis.findings.end());
    }
    for (const authz::LintFinding& finding : findings) {
      if (finding.severity == authz::LintSeverity::kError) {
        return Status::ValidationError(
            "manifest rejected: document '" + uri + "': [" + finding.code +
            "] " + finding.message);
      }
    }
  }
  return std::shared_ptr<const Repository>(std::move(repo));
}

}  // namespace server
}  // namespace xmlsec
