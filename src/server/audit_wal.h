#ifndef XMLSEC_SERVER_AUDIT_WAL_H_
#define XMLSEC_SERVER_AUDIT_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace xmlsec {
namespace server {

/// Durable audit write-ahead log.
///
/// The audit trail is first-class security state: after a crash the
/// server must still answer "who saw what, when".  The WAL provides
/// that guarantee without putting an fsync on every request:
///
///  * `Append` formats nothing and blocks on nothing but a bounded
///    queue — the request hot path hands the record to a background
///    writer and (in enqueue mode) returns immediately.
///  * The writer emits length-prefixed, CRC32-framed records and
///    group-commits them: one fsync covers every frame queued since the
///    previous commit.  A caller that needs the paper's strict "no
///    audit, no view" guarantee calls `WaitDurable(seq)` and is woken
///    by the commit that makes its frame durable (fsync-ack mode).
///  * On `Open` the tail of an existing log is scanned; a torn frame
///    (crash mid-write) is detected by its length/CRC and the file is
///    truncated back to the last intact frame, so the log is always a
///    clean prefix of acknowledged history.
///
/// Frame layout (little-endian):
///
///     [u32 payload_length][u32 crc32(payload)][payload bytes]
///
/// Failure semantics: a failed write, rotation, or fsync drops the
/// affected batch (the in-memory `AuditLog` still holds the entries),
/// fails any waiter on those frames, counts into `sink_failures`, and
/// marks the WAL unhealthy.  The writer keeps retrying with later
/// batches; the first success flips it back to healthy.  The server
/// maps "unhealthy" to its configured degraded mode (fail-closed 503 or
/// serve-with-memory-audit); see `ServerConfig::audit_degraded_mode`.
///
/// Fault injection: sites `audit.wal_write` and `audit.wal_fsync`
/// (common/failpoint.h) fail the corresponding operation in the writer.
class AuditWal {
 public:
  struct Options {
    /// Rotate when the current file would exceed this size.
    size_t rotate_bytes = 8 << 20;
    /// Rotated generations kept (`path.1` .. `path.N`).
    int max_rotated_files = 3;
    /// Bounded append queue; a full queue is a sink failure (the
    /// record is NOT silently dropped on the floor — Append reports it
    /// and the caller decides).
    size_t queue_limit = 4096;
    /// Group-commit window: without waiters, batches are fsynced once
    /// this many milliseconds of writes have accumulated.  Waiters
    /// (fsync-ack mode) always trigger a prompt commit.
    int fsync_interval_ms = 5;
    /// Force a commit once this many frames are written uncommitted.
    size_t fsync_batch_frames = 64;
  };

  /// Outcome of replaying a WAL file (see `Verify` and the
  /// `xacl_tool audit-verify` subcommand).
  struct VerifyReport {
    uint64_t frames = 0;         ///< intact frames
    uint64_t payload_bytes = 0;  ///< payload bytes across intact frames
    uint64_t file_bytes = 0;     ///< total file size
    uint64_t valid_bytes = 0;    ///< offset of the first non-intact byte
    /// Bytes past the last intact frame (0 when the file is clean).
    uint64_t torn_bytes() const { return file_bytes - valid_bytes; }
    /// True when the tail was a frame whose CRC did not match (bit rot
    /// or a partially overwritten sector) rather than a short write.
    bool crc_mismatch = false;
    bool clean() const { return valid_bytes == file_bytes; }
  };

  AuditWal() = default;
  ~AuditWal();

  AuditWal(const AuditWal&) = delete;
  AuditWal& operator=(const AuditWal&) = delete;

  /// Opens (or creates) the log at `path`, truncates any torn tail,
  /// and starts the background writer.  `report`, when non-null,
  /// receives the recovery scan outcome.
  Status Open(std::string path, Options options,
              VerifyReport* report = nullptr);

  /// Flushes, fsyncs, and joins the writer.  Idempotent.
  void Close();

  bool open() const;
  const std::string& path() const { return path_; }

  /// Enqueues one payload as a frame; returns its sequence number (for
  /// `WaitDurable`).  Fails when the WAL is closed or the bounded
  /// queue is full — both count as sink failures.
  Result<uint64_t> Append(std::string payload);

  /// Blocks until every frame up to `seq` is fsync-durable.  Returns
  /// an error when the batch containing `seq` failed (dropped by a
  /// write/fsync fault) or the WAL closed before committing it.
  Status WaitDurable(uint64_t seq);

  /// Append barrier: waits until everything enqueued so far is
  /// durable.
  Status Flush();

  /// False while the sink is failing (last batch dropped).  Flips back
  /// on the first subsequent successful commit.
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }

  int64_t sink_failures() const {
    return sink_failures_.load(std::memory_order_relaxed);
  }
  int64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  size_t queue_depth() const;

  /// Mirrors queue depth / fsync count / failures / degraded state
  /// into registry metrics.  Pass nullptrs to detach.  Bind before
  /// concurrent use; the counters must outlive the WAL.
  void BindMetrics(obs::Gauge* queue_depth, obs::Counter* fsyncs,
                   obs::Counter* sink_failures, obs::Gauge* degraded);

  /// Crash simulation for recovery tests: abandons the queue, abruptly
  /// closes the descriptor WITHOUT committing, then appends
  /// `torn_bytes` of a partial frame to the file — exactly what a
  /// power cut mid-write leaves behind.  The object is unusable
  /// afterwards (reopen a fresh AuditWal on the path to recover).
  void CrashForTest(size_t torn_bytes);

  /// Replays the WAL at `path` without opening it for writing:
  /// validates every frame, reports the torn/corrupt tail.  When
  /// `payloads` is non-null the intact payloads are appended to it.
  static Result<VerifyReport> Verify(const std::string& path,
                                     std::vector<std::string>* payloads =
                                         nullptr);

 private:
  void WriterLoop();
  /// Rotates `path_` -> `.1` -> ... under the writer (no lock needed:
  /// only the writer touches the file).
  bool Rotate();
  void SetHealthy(bool healthy);
  void NoteFailure(int64_t dropped_frames);

  std::string path_;
  Options options_;
  int fd_ = -1;
  size_t file_bytes_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< writer waits for frames / stop
  std::condition_variable ack_cv_;   ///< WaitDurable waits for commits
  std::deque<std::pair<uint64_t, std::string>> queue_;
  uint64_t next_seq_ = 0;     ///< last assigned sequence number
  uint64_t durable_seq_ = 0;  ///< highest fsync-acknowledged sequence
  uint64_t failed_seq_ = 0;   ///< highest sequence dropped by a fault
  bool waiter_pending_ = false;
  bool stop_ = false;
  bool crash_ = false;  ///< simulated crash: skip the final commit
  std::thread writer_;

  std::atomic<bool> healthy_{true};
  std::atomic<int64_t> sink_failures_{0};
  std::atomic<int64_t> fsyncs_{0};

  obs::Gauge* metric_queue_depth_ = nullptr;
  obs::Counter* metric_fsyncs_ = nullptr;
  obs::Counter* metric_failures_ = nullptr;
  obs::Gauge* metric_degraded_ = nullptr;
};

/// IEEE CRC-32 (the zlib/PNG polynomial) over `data` — the frame
/// checksum of the audit WAL.  Exposed for tests and tooling.
uint32_t Crc32(std::string_view data);

}  // namespace server
}  // namespace xmlsec

#endif  // XMLSEC_SERVER_AUDIT_WAL_H_
