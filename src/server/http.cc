#include "server/http.h"

#include "common/str_util.h"

namespace xmlsec {
namespace server {

namespace {

/// Hard caps on what the parser will even look at — the transports cap
/// head and body separately (and tighter), but the parser must stand on
/// its own against oversized or degenerate input handed to it directly.
constexpr size_t kMaxParsedRequest = 4 << 20;  // 4 MiB, body included
constexpr size_t kMaxHeaderCount = 128;

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Status ParseQueryString(std::string_view text,
                        std::map<std::string, std::string>* out) {
  for (const std::string& pair : SplitString(text, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      XMLSEC_ASSIGN_OR_RETURN(std::string key, PercentDecode(pair));
      (*out)[std::move(key)] = "";
    } else {
      XMLSEC_ASSIGN_OR_RETURN(
          std::string key,
          PercentDecode(std::string_view(pair).substr(0, eq)));
      XMLSEC_ASSIGN_OR_RETURN(
          std::string value,
          PercentDecode(std::string_view(pair).substr(eq + 1)));
      (*out)[std::move(key)] = std::move(value);
    }
  }
  return Status::OK();
}

/// Strict non-negative decimal; rejects empty input, signs, whitespace,
/// and values over 2^53 (far beyond any transport cap).
bool ParseContentLength(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

Result<HttpRequest> ParseHttpRequest(std::string_view text) {
  if (text.size() > kMaxParsedRequest) {
    return Status::InvalidArgument("HTTP request exceeds " +
                                   std::to_string(kMaxParsedRequest) +
                                   " bytes");
  }
  if (text.find('\0') != std::string_view::npos) {
    return Status::ParseError("HTTP request head contains a NUL byte");
  }
  HttpRequest request;
  size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    size_t end = text.find('\n', pos);
    std::string_view line;
    if (end == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size();
    } else {
      line = text.substr(pos, end - pos);
      pos = end + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    return line;
  };

  std::string_view request_line = next_line();
  std::vector<std::string> parts = SplitString(request_line, ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty()) {
    return Status::ParseError("malformed HTTP request line: '" +
                              std::string(request_line) + "'");
  }
  request.method = parts[0];
  request.version = parts[2];
  if (!StartsWith(request.version, "HTTP/")) {
    return Status::ParseError("malformed HTTP version '" + request.version +
                              "'");
  }

  std::string_view target = parts[1];
  for (char c : target) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return Status::ParseError(
          "control character in HTTP request target");
    }
  }
  size_t question = target.find('?');
  if (question != std::string_view::npos) {
    XMLSEC_RETURN_IF_ERROR(
        ParseQueryString(target.substr(question + 1), &request.query));
    target = target.substr(0, question);
  }
  XMLSEC_ASSIGN_OR_RETURN(request.path, PercentDecode(target));

  bool terminated = false;
  while (pos < text.size()) {
    std::string_view line = next_line();
    if (line.empty()) {  // End of headers.
      terminated = true;
      break;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("malformed HTTP header line: '" +
                                std::string(line) + "'");
    }
    if (request.headers.size() >= kMaxHeaderCount) {
      return Status::InvalidArgument("too many HTTP headers (cap " +
                                     std::to_string(kMaxHeaderCount) + ")");
    }
    std::string name = AsciiToLower(StripAsciiWhitespace(line.substr(0, colon)));
    std::string value(StripAsciiWhitespace(line.substr(colon + 1)));
    request.headers[name] = value;
  }
  if (!terminated) {
    return Status::ParseError(
        "truncated HTTP request head (missing terminating blank line)");
  }
  std::string_view rest = text.substr(pos);
  auto cl = request.headers.find("content-length");
  if (cl != request.headers.end()) {
    uint64_t declared = 0;
    if (!ParseContentLength(cl->second, &declared)) {
      return Status::ParseError("malformed Content-Length '" + cl->second +
                                "'");
    }
    if (rest.size() < declared) {
      return Status::ParseError(
          "truncated HTTP request body (Content-Length " + cl->second +
          ", got " + std::to_string(rest.size()) + " bytes)");
    }
    rest = rest.substr(0, static_cast<size_t>(declared));
  }
  request.body = std::string(rest);
  return request;
}

HttpRequestScan ScanHttpRequest(std::string_view data) {
  HttpRequestScan scan;
  size_t crlf = data.find("\r\n\r\n");
  size_t lf = data.find("\n\n");
  if (crlf == std::string_view::npos && lf == std::string_view::npos) {
    return scan;
  }
  scan.head_complete = true;
  scan.head_end = crlf != std::string_view::npos &&
                          (lf == std::string_view::npos || crlf < lf)
                      ? crlf + 4
                      : lf + 2;
  // Case-insensitive Content-Length lookup over the head lines only; a
  // malformed value reads as 0 so the buffer counts as complete and the
  // parser rejects it after dispatch.
  std::string_view head = data.substr(0, scan.head_end);
  size_t pos = 0;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(pos, end - pos);
    pos = end + 1;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name =
        AsciiToLower(StripAsciiWhitespace(line.substr(0, colon)));
    if (name != "content-length") continue;
    std::string value(StripAsciiWhitespace(line.substr(colon + 1)));
    if (!value.empty() && value.back() == '\r') value.pop_back();
    uint64_t declared = 0;
    if (ParseContentLength(value, &declared)) {
      scan.content_length = declared;
    }
    break;
  }
  scan.complete =
      data.size() >= scan.head_end &&
      data.size() - scan.head_end >= scan.content_length;
  return scan;
}

Result<std::pair<std::string, std::string>> ParseBasicAuth(
    std::string_view header_value) {
  std::string_view value = StripAsciiWhitespace(header_value);
  if (!StartsWith(value, "Basic ")) {
    return Status::InvalidArgument("only Basic authentication is supported");
  }
  XMLSEC_ASSIGN_OR_RETURN(
      std::string decoded,
      Base64Decode(StripAsciiWhitespace(value.substr(6))));
  if (decoded.find('\0') != std::string::npos) {
    return Status::InvalidArgument("NUL byte in Basic credentials");
  }
  size_t colon = decoded.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "Basic credentials must be 'user:password'");
  }
  return std::make_pair(decoded.substr(0, colon), decoded.substr(colon + 1));
}

std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8) |
                 static_cast<uint8_t>(data[i + 2]);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back(kBase64Alphabet[v & 63]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint8_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8);
    out.push_back(kBase64Alphabet[(v >> 18) & 63]);
    out.push_back(kBase64Alphabet[(v >> 12) & 63]);
    out.push_back(kBase64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view data) {
  std::string out;
  uint32_t acc = 0;
  int bits = 0;
  int padding = 0;
  for (char c : data) {
    if (c == '\n' || c == '\r') continue;  // MIME line wrapping.
    if (c == '=') {
      if (++padding > 2) {
        return Status::InvalidArgument("excess base64 padding");
      }
      continue;
    }
    if (padding > 0) {
      return Status::InvalidArgument("base64 data after padding");
    }
    int v = Base64Value(c);
    if (v < 0) {
      return Status::InvalidArgument("invalid base64 character");
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((acc >> bits) & 0xFF));
    }
  }
  // A single leftover symbol carries only 6 bits — it cannot encode a
  // byte; the input was truncated mid-group.
  if (bits == 6) {
    return Status::InvalidArgument("truncated base64 input");
  }
  return out;
}

Result<std::string> PercentDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%') {
      if (i + 2 >= text.size()) {
        return Status::InvalidArgument("truncated percent escape in '" +
                                       std::string(text) + "'");
      }
      int hi = HexValue(text[i + 1]);
      int lo = HexValue(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("malformed percent escape in '" +
                                       std::string(text) + "'");
      }
      char decoded = static_cast<char>(hi * 16 + lo);
      if (decoded == '\0') {
        return Status::InvalidArgument("embedded NUL in percent-encoded text");
      }
      out.push_back(decoded);
      i += 2;
      continue;
    }
    out.push_back(c == '+' ? ' ' : c);
  }
  return out;
}

}  // namespace server
}  // namespace xmlsec
